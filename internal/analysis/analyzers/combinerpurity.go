package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"pimds/internal/analysis"
)

// CombinerPurity enforces the non-blocking contract of functions marked
// //pimvet:nonblocking: the marked function — and every module function
// it transitively calls — must not block. The flat-combining server's
// throughput rests on the combiner goroutine never stalling mid-batch:
// one blocked combiner parks every connection hashing to its shard. The
// same holds for the wire encode/decode fast paths (which run inside
// the per-connection reader/writer loops between socket operations) and
// the load generator's inner loop (a stall there distorts the measured
// latency distribution).
//
// Flagged inside marked code and its module-transitive callees:
//
//   - channel sends, receives, selects and range-over-channel;
//   - sync primitives that can park: Mutex/RWMutex.Lock, RLock,
//     WaitGroup/Cond.Wait, Once.Do, and sync.Map's internally-locked
//     methods;
//   - time.Sleep and timer/ticker construction;
//   - any call into blocking-I/O packages (os, net, io, bufio,
//     syscall, log, ...) and fmt's writer/reader entry points
//     (Fprint*/Print*/Scan*);
//   - calls to I/O-shaped interface methods (Read, Write, Flush, ...),
//     whose dynamic implementation may block even when the static
//     callee looks harmless.
//
// Atomics are the sanctioned synchronization primitive on marked paths;
// sync/atomic is never flagged. Deliberate exceptions carry ordinary
// //pimvet:allow combinerpurity directives with justifications.
//
// Blocking here means parking the goroutine on another goroutine or the
// kernel. CPU loops and CAS retry loops are not flagged: they keep the
// combiner making progress.
var CombinerPurity = &analysis.Analyzer{
	Name: "combinerpurity",
	Doc:  "enforces //pimvet:nonblocking: marked hot paths and their module callees must not block",
	Run:  runCombinerPurity,
}

func runCombinerPurity(pass *analysis.Pass) {
	runMarked(pass, analysis.KindNonBlocking, scanBlocking)
}

// blockingPkgs are stdlib packages whose calls are assumed to reach the
// kernel or an io.Writer; any call into them is flagged.
var blockingPkgs = map[string]bool{
	"os": true, "os/exec": true, "net": true, "net/http": true,
	"syscall": true, "io": true, "io/ioutil": true, "bufio": true,
	"log": true, "database/sql": true,
}

// syncBlocking are the sync method names that can park a goroutine.
// sync.Map methods are included: they take internal locks.
var syncBlocking = map[string]bool{
	"Lock": true, "RLock": true, "Wait": true, "Do": true,
	"Load": true, "Store": true, "LoadOrStore": true,
	"LoadAndDelete": true, "Delete": true, "Swap": true, "Range": true,
}

// timeBlocking are the time package entry points that sleep or arm
// timers (timer machinery takes the runtime's timer locks).
var timeBlocking = map[string]bool{
	"Sleep": true, "After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// ioShapedNames flag interface method calls that look like I/O: the
// static type says nothing about the dynamic implementation, so the
// name is the contract.
var ioShapedNames = map[string]bool{
	"Read": true, "Write": true, "ReadFrom": true, "WriteTo": true,
	"ReadByte": true, "WriteByte": true, "WriteString": true,
	"Flush": true, "Close": true, "Sync": true,
}

func fmtBlocking(name string) bool {
	return strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Print") ||
		strings.HasPrefix(name, "Scan") || strings.HasPrefix(name, "Fscan") ||
		strings.HasPrefix(name, "Sscan")
}

// scanBlocking is the combinerpurity local rule: every potentially
// blocking operation in one function body, plus the module calls to
// chase.
func scanBlocking(info *types.Info, fn funcNode) ([]violation, []calleeRef) {
	var viols []violation
	var callees []calleeRef
	add := func(pos token.Pos, format string, args ...interface{}) {
		viols = append(viols, violation{pos, fmt.Sprintf(format, args...)})
	}
	ast.Inspect(fn.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// Defining a closure does not block; if the marked code also
			// calls it, the call is invisible to this analyzer (function
			// values are not followed) — allocfree flags the literal
			// itself on shared hot paths.
			return false
		}
		switch e := n.(type) {
		case *ast.SendStmt:
			add(e.Arrow, "sends on a channel")
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				add(e.Pos(), "receives from a channel")
			}
		case *ast.SelectStmt:
			add(e.Pos(), "selects on channels")
		case *ast.RangeStmt:
			if t := typeOf(info, e.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					add(e.Pos(), "ranges over a channel")
				}
			}
		case *ast.CallExpr:
			callees = scanCallBlocking(info, e, add, callees)
		}
		return true
	})
	return viols, callees
}

// scanCallBlocking applies the call policy: module callees are
// followed, denylisted stdlib entry points are violations, I/O-shaped
// interface calls are violations, everything else is assumed
// non-blocking.
func scanCallBlocking(info *types.Info, call *ast.CallExpr,
	add func(token.Pos, string, ...interface{}), callees []calleeRef) []calleeRef {

	f := pkgFunc(info, call)
	if f == nil || f.Pkg() == nil {
		return callees // conversion, builtin or function value: no park
	}
	path := f.Pkg().Path()
	name := f.Name()
	viaInterface := isInterfaceCall(info, call)
	switch {
	case isModulePath(path):
		if viaInterface && ioShapedNames[name] {
			add(call.Pos(), "calls %s through an interface; I/O-shaped methods may block", name)
		} else {
			callees = append(callees, calleeRef{f, call.Pos()})
		}
	case blockingPkgs[path]:
		add(call.Pos(), "calls %s, which may perform blocking I/O", f.FullName())
	case path == "sync" && syncBlocking[name]:
		add(call.Pos(), "parks on a sync primitive (%s)", f.FullName())
	case path == "time" && timeBlocking[name]:
		add(call.Pos(), "calls %s, which sleeps or arms a timer", f.FullName())
	case path == "fmt" && fmtBlocking(name):
		add(call.Pos(), "calls %s, which drives an io.Writer/Reader", f.FullName())
	case viaInterface && ioShapedNames[name]:
		add(call.Pos(), "calls %s through an interface; I/O-shaped methods may block", name)
	}
	return callees
}

// isInterfaceCall reports whether the call dispatches through an
// interface method.
func isInterfaceCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := info.Selections[sel]
	return ok && types.IsInterface(s.Recv())
}
