package analyzers_test

import (
	"testing"

	"pimds/internal/analysis"
	"pimds/internal/analysis/analysistest"
	"pimds/internal/analysis/analyzers"
)

func TestCombinerPurity(t *testing.T) {
	analysistest.Run(t, "testdata/src/combinerpurity", analyzers.CombinerPurity, analysis.Options{Strict: true})
}
