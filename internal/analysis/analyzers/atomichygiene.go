package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"pimds/internal/analysis"
)

// AtomicHygiene guards the host-side concurrent structures
// (pimds/internal/cds/...), whose measured throughput is half of every
// figure in the paper: a data race there silently corrupts the
// baseline numbers the PIM results are compared against.
//
// Two checks, everywhere the analyzer runs:
//
//  1. Mixed access: a variable or field that is ever passed to a
//     sync/atomic function (&x with atomic.LoadUint64, atomic.AddInt64,
//     atomic.CompareAndSwapPointer, ...) must never also be read or
//     written with a plain load/store — the plain access races with
//     the atomic one. (The typed atomics — atomic.Int64, Pointer[T],
//     ... — make this impossible by construction and are what the tree
//     uses; this check keeps the old-style API honest if it ever
//     appears.)
//
//  2. Lock copies: values whose type transitively contains a sync
//     primitive (Mutex, RWMutex, WaitGroup, Cond, Once, Map, Pool) or
//     a typed atomic must not be copied — as a by-value parameter or
//     result, by assignment from another variable or dereference, or
//     as a by-value range element. A copied lock is a new, unrelated
//     lock.
var AtomicHygiene = &analysis.Analyzer{
	Name: "atomichygiene",
	Doc:  "flags fields accessed both atomically and plainly, and sync primitives copied by value",
	Run:  runAtomicHygiene,
}

func runAtomicHygiene(pass *analysis.Pass) {
	checkMixedAccess(pass)
	checkLockCopies(pass)
}

// --- check 1: mixed atomic/plain access -----------------------------

func checkMixedAccess(pass *analysis.Pass) {
	info := pass.TypesInfo

	// First pass: every object (field or variable) whose address is
	// taken as the first pointer argument of a sync/atomic function,
	// plus the set of &x nodes involved so they aren't double-counted
	// as plain accesses.
	atomicObjs := make(map[types.Object]token.Pos) // object -> one atomic-use position
	atomicArgs := make(map[ast.Expr]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := pkgFunc(info, call)
			if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" ||
				f.Type().(*types.Signature).Recv() != nil {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				if obj := addressedObject(info, u.X); obj != nil {
					if _, seen := atomicObjs[obj]; !seen {
						atomicObjs[obj] = u.Pos()
					}
					atomicArgs[u.X] = true
				}
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return
	}

	// Second pass: plain uses of the same objects.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var obj types.Object
			var pos token.Pos
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if atomicArgs[ast.Expr(n)] {
					return false
				}
				if s, ok := info.Selections[n]; ok && s.Kind() == types.FieldVal {
					obj, pos = s.Obj(), n.Sel.Pos()
				}
			case *ast.Ident:
				obj, pos = info.Uses[n], n.Pos()
				if v, ok := obj.(*types.Var); !ok || v.IsField() {
					return true
				}
			default:
				return true
			}
			if obj == nil {
				return true
			}
			if _, isAtomic := atomicObjs[obj]; isAtomic && !atomicArgs[n.(ast.Expr)] {
				pass.Reportf(pos,
					"%s is accessed with sync/atomic elsewhere but read/written plainly here; mixing atomic and plain access races", obj.Name())
				return false
			}
			return true
		})
	}
}

// addressedObject resolves &x to the field or variable object of x.
func addressedObject(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[x]; ok && s.Kind() == types.FieldVal {
			return s.Obj()
		}
	}
	return nil
}

// --- check 2: lock copies -------------------------------------------

// syncLockTypes are the by-value-uncopyable types in sync and
// sync/atomic.
var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Cond": true,
	"Once": true, "Map": true, "Pool": true,
	// sync/atomic typed values.
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

// containsLock reports whether a value of type t holds a sync
// primitive directly (not behind a pointer, slice, map or channel).
func containsLock(t types.Type) bool {
	return containsLock1(t, make(map[types.Type]bool))
}

func containsLock1(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if n := namedTypeDirect(t); n != nil {
		if pkg := n.Obj().Pkg(); pkg != nil &&
			(pkg.Path() == "sync" || pkg.Path() == "sync/atomic") &&
			syncLockTypes[n.Obj().Name()] {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock1(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock1(u.Elem(), seen)
	}
	return false
}

// namedTypeDirect returns t as a named type without unwrapping
// pointers: a *sync.Mutex is copyable, a sync.Mutex is not.
func namedTypeDirect(t types.Type) *types.Named {
	if n, ok := t.(*types.Named); ok {
		return n
	}
	return nil
}

func checkLockCopies(pass *analysis.Pass) {
	info := pass.TypesInfo
	report := func(pos token.Pos, t types.Type, how string) {
		pass.Reportf(pos, "%s copies a value containing a sync primitive (%s); pass a pointer instead", how, t.String())
	}

	for _, fn := range allFuncs(pass.Files) {
		// By-value parameters and results.
		for _, list := range []*ast.FieldList{fn.typ.Params, fn.typ.Results} {
			if list == nil {
				continue
			}
			for _, field := range list.List {
				t := info.Types[field.Type].Type
				if t != nil && containsLock(t) {
					report(field.Type.Pos(), t, "parameter or result")
				}
			}
		}
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if len(n.Rhs) != len(n.Lhs) {
						break
					}
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue // x used, nothing copied at runtime
					}
					if copiesLockValue(info, rhs) {
						report(n.Lhs[i].Pos(), info.Types[rhs].Type, "assignment")
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := exprType(info, n.Value); t != nil && containsLock(t) {
						report(n.Value.Pos(), t, "range element")
					}
				}
			case *ast.CallExpr:
				// Passing a lock-containing value (not pointer) as an
				// argument copies it. Skip conversions and builtins.
				if pkgFunc(info, call(n)) == nil && !isCallToFuncValue(info, n) {
					return true
				}
				for _, arg := range n.Args {
					if copiesLockValue(info, arg) {
						report(arg.Pos(), info.Types[arg].Type, "argument")
					}
				}
			}
			return true
		})
	}
}

func call(n *ast.CallExpr) *ast.CallExpr { return n }

// exprType resolves an expression's type, falling back to Defs for
// identifiers declared by the expression itself (range variables).
func exprType(info *types.Info, e ast.Expr) types.Type {
	if t := info.Types[e].Type; t != nil {
		return t
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// isCallToFuncValue reports whether the call target is an expression
// of function type (closure variable, field, etc.) rather than a
// conversion.
func isCallToFuncValue(info *types.Info, c *ast.CallExpr) bool {
	tv, ok := info.Types[c.Fun]
	if !ok {
		return false
	}
	_, isSig := tv.Type.Underlying().(*types.Signature)
	return isSig && !tv.IsType()
}

// copiesLockValue reports whether evaluating e produces a by-value
// copy of lock-containing state: a variable, field selection,
// dereference or index of such a type. Composite literals and calls
// construct fresh values and are fine.
func copiesLockValue(info *types.Info, e ast.Expr) bool {
	t := info.Types[e].Type
	if t == nil || !containsLock(t) {
		return false
	}
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	}
	return false
}
