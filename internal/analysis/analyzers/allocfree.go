package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"pimds/internal/analysis"
)

// AllocFree enforces the zero-allocation contract of functions marked
// //pimvet:allocfree: the marked function — and every module function
// it transitively calls — must not allocate on the heap. The paper's
// flat-combining result holds only while the combiner's sequential
// apply loop and the wire fast paths stay allocation-free; this
// analyzer turns that performance requirement into a machine-checked
// invariant (the AllocsPerRun tests pin the same contract at runtime).
//
// Flagged inside marked code and its module-transitive callees:
//
//   - make, new, &T{...} composite literals, slice and map literals;
//   - append whose destination is a function-local slice (appending
//     into caller-provided, receiver-held or package-level storage is
//     allowed: that is the preallocated-scratch idiom);
//   - interface boxing — at call arguments, assignments, returns and
//     conversions — of values an interface cannot hold inline;
//   - string concatenation and string<->[]byte conversions;
//   - function literals (closure allocation) and go statements;
//   - map inserts;
//   - calls to standard-library functions outside a small allowlist of
//     known non-allocating primitives (sync/atomic, math, math/bits,
//     encoding/binary accessors, errors.Is/As/Unwrap, io.ReadFull,
//     time arithmetic, math/rand draws, sort.Search*, strconv.Append*).
//
// Exemptions — amortized grow paths, free-list refills — use ordinary
// //pimvet:allow allocfree directives with justifications, in the file
// where the allocation lives; the exemption keeps working when the
// function is reached from a marked caller in another package.
//
// Known holes, accepted for simplicity: calls through function values
// and through module-declared interfaces are not followed (annotate the
// implementations instead), and stack-vs-heap escape analysis is not
// modeled — the analyzer is deliberately more conservative than the
// compiler.
var AllocFree = &analysis.Analyzer{
	Name: "allocfree",
	Doc:  "enforces //pimvet:allocfree: marked hot paths and their module callees must not heap-allocate",
	Run:  runAllocFree,
}

func runAllocFree(pass *analysis.Pass) {
	runMarked(pass, analysis.KindAllocFree, scanAllocs)
}

// runMarked is the shared driver for mark-rooted transitive analyzers:
// scan each marked function locally, then chase its module callees
// through the fact checker, reporting chain failures at the call site
// inside the package under analysis.
func runMarked(pass *analysis.Pass, kind string, scan scanFunc) {
	marked, stray := markedFuncs(pass, kind)
	reportStray(pass, kind, stray)
	if len(marked) == 0 {
		return
	}
	fc := newFactChecker(pass, scan)
	for _, m := range marked {
		viols, callees := scan(pass.TypesInfo, m.funcNode)
		for _, v := range viols {
			pass.Reportf(v.pos, "%s is marked //pimvet:%s but %s", m.name(), kind, v.msg)
		}
		for _, c := range callees {
			if fact := fc.check(c.fn); !fact.clean {
				pass.Reportf(c.pos, "%s is marked //pimvet:%s but calls %s, which %s",
					m.name(), kind, c.fn.FullName(), fact.why)
			}
		}
	}
}

// allocfreePkgs are stdlib packages whose entire API is non-allocating.
var allocfreePkgs = map[string]bool{
	"sync/atomic": true,
	"math":        true,
	"math/bits":   true,
}

// allocfreeFuncs allowlists individual stdlib functions and methods
// (matched by package path and bare name) known not to allocate.
var allocfreeFuncs = map[string]map[string]bool{
	"encoding/binary": {
		"Uint16": true, "Uint32": true, "Uint64": true,
		"PutUint16": true, "PutUint32": true, "PutUint64": true,
		"AppendUint16": true, "AppendUint32": true, "AppendUint64": true,
	},
	"errors": {"Is": true, "As": true, "Unwrap": true},
	// Checksum over a prebuilt table; MakeTable allocates and must run
	// at package init, never on the hot path.
	"hash/crc32": {"Checksum": true},
	"io":         {"ReadFull": true, "ReadAtLeast": true},
	"time": {
		"Now": true, "Since": true, "Until": true, "Sub": true,
		"Nanoseconds": true, "Microseconds": true, "Milliseconds": true,
		"Seconds": true, "UnixNano": true, "Unix": true,
	},
	"math/rand": {
		"Int": true, "Intn": true, "Int31": true, "Int31n": true,
		"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
		"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	},
	"sort":    {"Search": true, "SearchInts": true, "SearchStrings": true},
	"strconv": {"AppendInt": true, "AppendUint": true},
}

func allocAllowed(pkgPath, name string) bool {
	if allocfreePkgs[pkgPath] {
		return true
	}
	return allocfreeFuncs[pkgPath][name]
}

// scanAllocs is the allocfree local rule: every allocation site in one
// function body, plus the module calls to chase.
func scanAllocs(info *types.Info, fn funcNode) ([]violation, []calleeRef) {
	var viols []violation
	var callees []calleeRef
	add := func(pos token.Pos, format string, args ...interface{}) {
		viols = append(viols, violation{pos, fmt.Sprintf(format, args...)})
	}
	covered := make(map[ast.Node]bool) // composite literals already reported behind &

	ast.Inspect(fn.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			add(n.Pos(), "allocates a closure (function literal)")
			return false
		}
		switch e := n.(type) {
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if cl, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					add(e.Pos(), "heap-allocates a composite literal (&T{...})")
					covered[cl] = true
				}
			}
		case *ast.CompositeLit:
			if covered[e] {
				return true
			}
			if t := typeOf(info, e); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					add(e.Pos(), "allocates a slice literal")
				case *types.Map:
					add(e.Pos(), "allocates a map literal")
				}
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD {
				if tv, ok := info.Types[e]; ok && tv.Value == nil && isStringType(tv.Type) {
					add(e.Pos(), "allocates by string concatenation")
				}
			}
		case *ast.GoStmt:
			add(e.Pos(), "starts a goroutine (allocates)")
		case *ast.ReturnStmt:
			scanReturnBoxing(info, fn, e, add)
		case *ast.AssignStmt:
			scanAssignAllocs(info, e, add)
		case *ast.CallExpr:
			callees = scanCallAllocs(info, fn, e, add, callees)
		}
		return true
	})
	return viols, callees
}

// scanCallAllocs classifies one call: conversion, builtin, boxing at
// the arguments, then callee policy (module call to follow, allowlisted
// stdlib, or violation).
func scanCallAllocs(info *types.Info, fn funcNode, call *ast.CallExpr,
	add func(token.Pos, string, ...interface{}), callees []calleeRef) []calleeRef {

	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			scanConversion(info, tv.Type, call, add)
		}
		return callees
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				add(call.Pos(), "allocates via make; preallocate in setup or reuse a scratch buffer")
			case "new":
				add(call.Pos(), "allocates via new")
			case "append":
				if len(call.Args) == 0 {
					return callees
				}
				root := rootIdent(call.Args[0])
				var obj types.Object
				if root != nil {
					obj = info.ObjectOf(root)
				}
				if root == nil || declaredWithin(obj, fn.body) {
					add(call.Pos(), "appends to a function-local slice (allocates per call); append into caller-provided or receiver scratch storage")
				}
			}
			return callees
		}
	}
	scanArgBoxing(info, call, add)
	if f := pkgFunc(info, call); f != nil && f.Pkg() != nil {
		path := f.Pkg().Path()
		switch {
		case isModulePath(path):
			callees = append(callees, calleeRef{f, call.Pos()})
		case allocAllowed(path, f.Name()):
		default:
			add(call.Pos(), "calls %s, which is outside the allocation-free allowlist", f.FullName())
		}
	}
	return callees
}

// scanConversion flags allocating conversions: string<->[]byte/[]rune
// and boxing conversions to interface types.
func scanConversion(info *types.Info, target types.Type, call *ast.CallExpr,
	add func(token.Pos, string, ...interface{})) {

	src := typeOf(info, call.Args[0])
	if src == nil {
		return
	}
	switch {
	case isStringType(target) && isByteOrRuneSlice(src):
		add(call.Pos(), "allocates converting a byte/rune slice to string")
	case isByteOrRuneSlice(target) && isStringType(src):
		add(call.Pos(), "allocates converting a string to a byte/rune slice")
	case types.IsInterface(target) && !types.IsInterface(src) &&
		!info.Types[call.Args[0]].IsNil() && !pointerShaped(src):
		add(call.Pos(), "boxes a value into an interface (conversion)")
	}
}

// scanArgBoxing flags concrete values passed where the callee takes an
// interface: each such argument is boxed, which allocates for any value
// an interface cannot hold as a single pointer word.
func scanArgBoxing(info *types.Info, call *ast.CallExpr, add func(token.Pos, string, ...interface{})) {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if call.Ellipsis.IsValid() {
				pt = last // the slice is passed whole; no per-element boxing
			} else if st, ok := last.Underlying().(*types.Slice); ok {
				pt = st.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		atv := info.Types[arg]
		if atv.Type == nil || atv.IsNil() || types.IsInterface(atv.Type) || pointerShaped(atv.Type) {
			continue
		}
		add(arg.Pos(), "boxes a value into an interface argument (allocates)")
	}
}

// scanAssignAllocs flags interface boxing on plain assignment, string
// +=, and map inserts.
func scanAssignAllocs(info *types.Info, e *ast.AssignStmt, add func(token.Pos, string, ...interface{})) {
	if e.Tok == token.ASSIGN && len(e.Lhs) == len(e.Rhs) {
		for i := range e.Lhs {
			if id, ok := e.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			lt := typeOf(info, e.Lhs[i])
			rtv := info.Types[e.Rhs[i]]
			if lt != nil && types.IsInterface(lt) && rtv.Type != nil &&
				!types.IsInterface(rtv.Type) && !rtv.IsNil() && !pointerShaped(rtv.Type) {
				add(e.Rhs[i].Pos(), "boxes a value into an interface on assignment")
			}
		}
	}
	if e.Tok == token.ADD_ASSIGN && len(e.Lhs) == 1 && isStringType(typeOf(info, e.Lhs[0])) {
		add(e.Pos(), "allocates by string concatenation")
	}
	if e.Tok == token.ASSIGN || e.Tok == token.DEFINE {
		for _, lhs := range e.Lhs {
			if ix, ok := lhs.(*ast.IndexExpr); ok {
				if t := typeOf(info, ix.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						add(ix.Pos(), "may allocate inserting into a map")
					}
				}
			}
		}
	}
}

// scanReturnBoxing flags concrete values returned through interface
// result types.
func scanReturnBoxing(info *types.Info, fn funcNode, ret *ast.ReturnStmt,
	add func(token.Pos, string, ...interface{})) {

	if fn.typ.Results == nil || len(ret.Results) == 0 {
		return
	}
	var rts []types.Type
	for _, field := range fn.typ.Results.List {
		t := typeOf(info, field.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for j := 0; j < n; j++ {
			rts = append(rts, t)
		}
	}
	if len(ret.Results) != len(rts) {
		return // naked return or tuple-returning call: nothing new boxed here
	}
	for i, r := range ret.Results {
		rtv := info.Types[r]
		if rts[i] != nil && types.IsInterface(rts[i]) && rtv.Type != nil &&
			!types.IsInterface(rtv.Type) && !rtv.IsNil() && !pointerShaped(rtv.Type) {
			add(r.Pos(), "boxes a value into an interface return (allocates)")
		}
	}
}

// typeOf is info.Types[e].Type with nil-safety.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// pointerShaped reports whether an interface can hold a value of type t
// without allocating: pointer-like types are stored directly in the
// interface word.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}
