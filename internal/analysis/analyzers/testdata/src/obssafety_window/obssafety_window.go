// Fixture for the obssafety analyzer's storage-free combining-window
// check: functions marked //pimvet:window must not call into the
// file-I/O packages (os, syscall, io, bufio, io/fs) — durability
// belongs to the WAL writer goroutine, not the pinned batch window.
//
//pimvet:package pimds/internal/server/fixture
package fixture

import (
	"bufio"
	"encoding/binary"
	"os"
)

type shard struct {
	buf []byte
	f   *os.File
	bw  *bufio.Writer
}

// stageBatch is the sanctioned shape: the window serializes into a
// staging buffer and hands the bytes to the writer goroutine.
//
//pimvet:window
func (sh *shard) stageBatch(keys []int64) {
	for _, k := range keys {
		sh.buf = binary.LittleEndian.AppendUint64(sh.buf, uint64(k))
	}
}

// syncInline fsyncing inside the window serializes the whole shard
// behind the disk: flagged.
//
//pimvet:window
func (sh *shard) syncInline(keys []int64) {
	sh.stageBatch(keys)
	sh.f.Sync() // want `file I/O inside the pinned combining window \(os\.Sync\)`
}

// writeInline writing the record from the window, even buffered, still
// reaches the file on flush: both calls flagged.
//
//pimvet:window
func (sh *shard) writeInline() {
	sh.bw.Write(sh.buf) // want `file I/O inside the pinned combining window \(bufio\.Write\)`
	sh.bw.Flush()       // want `file I/O inside the pinned combining window \(bufio\.Flush\)`
}

// openInline touching the filesystem in the window: flagged.
//
//pimvet:window
func (sh *shard) openInline(dir string) {
	os.WriteFile(dir, sh.buf, 0o644) // want `file I/O inside the pinned combining window \(os\.WriteFile\)`
}

// writerLoop is not marked: the dedicated writer goroutine is exactly
// where this I/O belongs, so nothing here is flagged.
func (sh *shard) writerLoop(commits chan []byte) {
	for b := range commits {
		sh.bw.Write(b)
		sh.bw.Flush()
		sh.f.Sync()
	}
}

// A window mark attached to nothing fails loudly instead of silently
// guarding nothing. The diagnostic lands on the directive comment, so
// the want clause shares its line.
//
//pimvet:window orphaned mark // want `/pimvet:window is not attached to a function declaration`
var strayMark = 0
