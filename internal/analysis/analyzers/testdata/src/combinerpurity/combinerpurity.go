// Fixture for the combinerpurity analyzer: functions marked
// //pimvet:nonblocking — and everything they transitively call inside
// the module — must never park the goroutine: no channel operations,
// lock acquisition, sleeps, or I/O. Atomics are the sanctioned
// primitive and pass untouched.
package fixture

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

//pimvet:nonblocking
func badSend(ch chan int) {
	ch <- 1 // want `sends on a channel`
}

//pimvet:nonblocking
func badRecv(ch chan int) int {
	return <-ch // want `receives from a channel`
}

//pimvet:nonblocking
func badSelect(ch chan int) {
	select { // want `selects on channels`
	case ch <- 1: // want `sends on a channel`
	default:
	}
}

//pimvet:nonblocking
func badRange(ch chan int) int {
	n := 0
	for v := range ch { // want `ranges over a channel`
		n += v
	}
	return n
}

//pimvet:nonblocking
func badLock(mu *sync.Mutex) {
	mu.Lock() // want `parks on a sync primitive`
	defer mu.Unlock()
}

//pimvet:nonblocking
func badRLock(mu *sync.RWMutex) {
	mu.RLock() // want `parks on a sync primitive`
	mu.RUnlock()
}

//pimvet:nonblocking
func badSleep() {
	time.Sleep(time.Millisecond) // want `sleeps or arms a timer`
}

//pimvet:nonblocking
func badPrint(v int) {
	fmt.Println(v) // want `drives an io\.Writer`
}

//pimvet:nonblocking
func badFile(name string) {
	os.Remove(name) // want `may perform blocking I/O`
}

type flusher interface{ Flush() error }

//pimvet:nonblocking
func badFlush(f flusher) {
	f.Flush() // want `I/O-shaped methods may block`
}

type applier interface{ Apply(n int) int }

// okApply: module-interface calls with non-I/O names are trusted — the
// implementations carry their own annotations.
//
//pimvet:nonblocking
func okApply(a applier) int {
	return a.Apply(1)
}

// okAtomic: atomics are the sanctioned synchronization primitive.
//
//pimvet:nonblocking
func okAtomic(v *atomic.Uint64) uint64 {
	return v.Add(1)
}

// viaHelper reaches a channel send through a package-local helper; the
// chain is reported at the call site.
//
//pimvet:nonblocking
func viaHelper(ch chan int) {
	notify(ch) // want `calls .*notify, which sends on a channel at combinerpurity\.go:\d+`
}

func notify(ch chan int) {
	ch <- 1
}

// viaJustified reaches a lock exempted where it lives.
//
//pimvet:nonblocking
func viaJustified(mu *sync.Mutex) {
	guarded(mu)
}

func guarded(mu *sync.Mutex) {
	mu.Lock() //pimvet:allow combinerpurity: uncontended by construction in this fixture
	mu.Unlock()
}
