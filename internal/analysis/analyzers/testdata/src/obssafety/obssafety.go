// Fixture for the obssafety analyzer: observability is write-only
// from handler code; reading metrics or accounting state back into
// the simulation makes results depend on observability configuration.
//
//pimvet:package pimds/internal/core/fixture
package fixture

import (
	"pimds/internal/obs"
	"pimds/internal/prof"
	"pimds/internal/sim"
)

type part struct {
	served *obs.Counter
	batch  *obs.Histogram
	limit  int64
}

// record only writes metrics: the sanctioned direction.
func (p *part) record(c *sim.PIMCore, m sim.Message) {
	p.served.Inc()
	p.batch.Observe(m.Val)
	c.Local()
}

// feedback branches simulated behaviour on a metric value: with a nil
// registry Value() returns 0 and the simulation takes the other path.
func (p *part) feedback(c *sim.PIMCore, m sim.Message) {
	if p.served.Value() > 100 { // want `handler code reads metric state \(Counter\.Value\)`
		c.Local()
	}
}

func (p *part) histFeedback(c *sim.PIMCore) int64 {
	return p.batch.Quantile(0.99) // want `handler code reads metric state \(Histogram\.Quantile\)`
}

// ledger reads the cost-accounting state to make a protocol decision.
func (p *part) ledger(c *sim.PIMCore, m sim.Message) {
	if c.Vault().Reads > 10 { // want `handler code reads accounting state \(Vault\.Reads\)`
		c.Local()
	}
}

func (p *part) opsLedger(c *sim.PIMCore) uint64 {
	return c.Stats.Ops // want `handler code reads accounting state \(CoreStats\.Ops\)`
}

// export runs outside handler context (no core parameter): snapshot
// and collector paths are the sanctioned readers.
func (p *part) export() uint64 {
	return p.served.Value()
}

type profPart struct {
	pr *prof.Profiler
}

// steer branches simulated behaviour on profiler state: with no
// profiler attached the count is zero and the run takes another path.
func (p *profPart) steer(c *sim.PIMCore) {
	if p.pr.Completed() > 10 { // want `handler code touches profiler state \(Profiler\.Completed\)`
		c.Local()
	}
}

// peek reads a request record's attribution ledger inside a handler.
func peek(c *sim.CPU, rec *prof.Record) int64 {
	return rec.LatencyPS // want `handler code touches profiler state \(Record\.LatencyPS\)`
}

// drain runs post-run (no core parameter): reports and shares are the
// sanctioned way out of the profiler.
func (p *profPart) drain() map[string]float64 {
	return p.pr.Shares()
}
