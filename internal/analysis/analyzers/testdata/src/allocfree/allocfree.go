// Fixture for the allocfree analyzer: functions marked
// //pimvet:allocfree — and everything they transitively call inside the
// module — must not heap-allocate. Preallocated-scratch idioms (append
// into caller/receiver storage) pass; every allocation shape is
// flagged; justified //pimvet:allow exemptions suppress, including from
// a marked caller's chain.
package fixture

import "fmt"

type item struct{ k, v uint64 }

type buf struct {
	items []item
}

// okAppend appends into receiver-held scratch: the preallocated idiom.
//
//pimvet:allocfree
func okAppend(b *buf, it item) {
	b.items = append(b.items, it)
}

// okInto appends into a caller-provided destination: allowed.
//
//pimvet:allocfree
func okInto(dst []item, it item) []item {
	return append(dst, it)
}

//pimvet:allocfree
func badMake(n int) {
	_ = make([]item, n) // want `allocates via make`
}

//pimvet:allocfree
func badNew() {
	_ = new(item) // want `allocates via new`
}

//pimvet:allocfree
func badLit() {
	p := &item{k: 1} // want `heap-allocates a composite literal`
	_ = p
}

//pimvet:allocfree
func badSliceLit() int {
	s := []int{1, 2} // want `allocates a slice literal`
	return len(s)
}

//pimvet:allocfree
func badMapLit() {
	m := map[int]int{} // want `allocates a map literal`
	m[1] = 2           // want `may allocate inserting into a map`
}

//pimvet:allocfree
func badLocalAppend(n int) int {
	var local []int
	for i := 0; i < n; i++ {
		local = append(local, i) // want `appends to a function-local slice`
	}
	return len(local)
}

//pimvet:allocfree
func badClosure(n int) func() int {
	return func() int { return n } // want `allocates a closure`
}

//pimvet:allocfree
func badConcat(a, b string) string {
	return a + b // want `allocates by string concatenation`
}

//pimvet:allocfree
func badBytesToString(b []byte) string {
	return string(b) // want `allocates converting a byte/rune slice to string`
}

//pimvet:allocfree
func badStringToBytes(s string) []byte {
	return []byte(s) // want `allocates converting a string to a byte/rune slice`
}

func sink(x interface{}) { _ = x }

//pimvet:allocfree
func badArgBox(v int) {
	sink(v) // want `boxes a value into an interface argument`
}

//pimvet:allocfree
func badAssignBox(v int) {
	var x interface{}
	x = v // want `boxes a value into an interface on assignment`
	_ = x
}

type frameErr struct{ code int }

func (e frameErr) Error() string { return "frame" }

//pimvet:allocfree
func badReturnBox(code int) error {
	return frameErr{code} // want `boxes a value into an interface return`
}

//pimvet:allocfree
func badGo() {
	go nothing() // want `starts a goroutine`
}

func nothing() {}

//pimvet:allocfree
func badStdlib(n int) string {
	return fmt.Sprintf("%d", n) // want `boxes a value into an interface argument` `calls fmt\.Sprintf, which is outside the allocation-free allowlist`
}

// viaHelper reaches an allocation through a package-local helper; the
// chain is reported at the call site.
//
//pimvet:allocfree
func viaHelper(n int) []int {
	return helper(n) // want `calls .*helper, which allocates via make.* at allocfree\.go:\d+`
}

func helper(n int) []int {
	return make([]int, n)
}

var scratch []int

// viaJustified reaches an allocation exempted where it lives: the
// justified allow inside the callee suppresses the whole chain.
//
//pimvet:allocfree
func viaJustified() {
	grow()
}

func grow() {
	if cap(scratch) == 0 {
		scratch = make([]int, 0, 64) //pimvet:allow allocfree: one-time grow; steady state reuses capacity
	}
}

// okPkgAppend appends into package-level storage: amortized scratch.
//
//pimvet:allocfree
func okPkgAppend(v int) {
	scratch = scratch[:0]
	scratch = append(scratch, v)
}

//pimvet:allocfree // want `not attached to a function declaration`
var notAFunc int
