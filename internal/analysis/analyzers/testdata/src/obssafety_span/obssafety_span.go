// Fixture for the obssafety analyzer's server-side check: span
// allocation inside hot loops must sit behind the sampling guard so
// unsampled requests pay nothing for tracing.
//
//pimvet:package pimds/internal/server/fixture
package fixture

// span mirrors the server's request-span record; the analyzer matches
// the named type "span" declared in the package under analysis.
type span struct {
	traceID uint64
	start   int64
}

type op struct {
	sampled bool
	sp      *span
}

func sink(*span) {}

// unguardedLiteral allocates a span for every request: flagged.
func unguardedLiteral(ops []op) {
	for i := range ops {
		ops[i].sp = &span{traceID: uint64(i)} // want `span allocated unconditionally inside a hot loop`
	}
}

// unguardedNew uses new(span) instead of a literal: still flagged.
func unguardedNew(ops []op) {
	for i := range ops {
		ops[i].sp = new(span) // want `span allocated unconditionally inside a hot loop`
	}
}

// unguardedValue allocates by value in a plain for loop: flagged.
func unguardedValue(n int) {
	for i := 0; i < n; i++ {
		s := span{start: int64(i)} // want `span allocated unconditionally inside a hot loop`
		sink(&s)
	}
}

// guarded is the sanctioned shape: allocation behind the sampling
// guard, so only sampled requests allocate.
func guarded(ops []op) {
	for i := range ops {
		if ops[i].sampled {
			ops[i].sp = &span{traceID: uint64(i)}
		}
	}
}

// guardedSwitch accepts any conditional between loop and allocation.
func guardedSwitch(ops []op, mode int) {
	for i := range ops {
		switch mode {
		case 1:
			ops[i].sp = new(span)
		}
	}
}

// outsideLoop is setup code, not a hot loop: unconditional allocation
// is fine.
func outsideLoop() *span {
	return &span{}
}

// nestedUnguarded: an if around an inner loop does not guard the
// allocation inside that loop — the inner loop body still allocates
// per iteration.
func nestedUnguarded(ops []op, traced bool) {
	if traced {
		for i := range ops {
			ops[i].sp = &span{} // want `span allocated unconditionally inside a hot loop`
		}
	}
}

// closureInLoop: a function literal resets the guard context — the
// literal runs on its own schedule and is analyzed separately; the
// allocation inside it is not in this loop's per-iteration path.
func closureInLoop(ops []op) []func() *span {
	var fns []func() *span
	for range ops {
		fns = append(fns, func() *span { return &span{} })
	}
	return fns
}
