// Fixture for the obssafety analyzer's ticker-only rotation check:
// (*obs.Window).Rotate and (*health.Engine).Evaluate may be called
// only from functions marked //pimvet:rotator.
//
//pimvet:package pimds/internal/server/fixture
package fixture

import (
	"time"

	"pimds/internal/obs"
	"pimds/internal/obs/health"
)

type server struct {
	win *obs.Window
	eng *health.Engine
}

// rotateLoop is the sanctioned shape: one dedicated ticker goroutine
// owns rotation and health evaluation.
//
//pimvet:rotator
func (s *server) rotateLoop(stop chan struct{}) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			s.win.Rotate()
			_ = s.eng.Evaluate(s.win.History())
		}
	}
}

// scrapeHandler rotating on demand would snapshot the registry per
// request: flagged.
func (s *server) scrapeHandler() *obs.History {
	s.win.Rotate() // want `window rotation outside a //pimvet:rotator function`
	return s.win.History()
}

// combinePass evaluating health per batch: flagged.
func (s *server) combinePass() bool {
	v := s.eng.Evaluate(s.win.History()) // want `health evaluation outside a //pimvet:rotator function`
	return v.State == health.Ok
}

// rotateInClosure: a function literal carries no rotator mark even
// inside a marked function — the goroutine it becomes runs on its own
// schedule: flagged.
//
//pimvet:rotator
func (s *server) rotateInClosure() func() {
	return func() {
		s.win.Rotate() // want `window rotation outside a //pimvet:rotator function`
	}
}

// readHistory only reads; reading is legal anywhere.
func (s *server) readHistory() *obs.History {
	return s.win.History()
}

// A rotator mark attached to no function declaration fails loudly
// (the diagnostic lands on the directive itself).
//
//pimvet:rotator orphan note // want `rotator is not attached to a function declaration`
var strayTarget = 0
