// Fixture for the determinism analyzer. The package directive below
// places it (logically) inside the simulator scope so the sim-only
// checks — goroutines and map-range mutation — are active.
//
//pimvet:package pimds/internal/core/fixture
package fixture

import (
	"math/rand"
	"time"
)

type state struct {
	table map[int64]int64
	total int64
}

func wallClock() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

func wallSleep() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
}

func globalRand() int64 {
	return rand.Int63() // want `global math/rand\.Int63 is seeded from runtime state`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand\.Shuffle`
}

func opaqueSource(src rand.Source) *rand.Rand {
	return rand.New(src) // want `rand\.New with a source not built by rand\.NewSource`
}

func seeded() *rand.Rand {
	return rand.New(rand.NewSource(42)) // ok: seed auditable at the call site
}

func seededUse(rng *rand.Rand) int64 {
	return rng.Int63() // ok: method on an explicitly-seeded generator
}

func (s *state) mapOrderMutation(kv map[int64]int64) {
	for k, v := range kv {
		s.table[k] = v // want `map-range body mutates state that outlives`
	}
}

func (s *state) mapOrderMethodCall(kv map[int64]int64, sink *state) {
	for k := range kv {
		sink.add(k) // want `map-range body mutates state that outlives`
	}
}

func (s *state) add(k int64) { s.total += k }

func (s *state) mapOrderLocalOnly(kv map[int64]int64) []int64 {
	keys := make([]int64, 0, len(kv))
	for k := range kv {
		keys = append(keys, k) // ok: builds a function-local slice (sort it next)
	}
	return keys
}

func spawn(done chan struct{}) {
	go func() { // want `goroutine spawned in simulator-scoped code`
		close(done)
	}()
}

func allowed() int64 {
	//pimvet:allow determinism: fixture demonstrates a justified suppression
	return time.Now().UnixNano()
}
