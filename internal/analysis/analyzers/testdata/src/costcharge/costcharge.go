// Fixture for the costcharge analyzer: handler code (anything holding
// a *sim.PIMCore or *sim.CPU) touching vault-resident cds structures
// must charge the latency model.
//
//pimvet:package pimds/internal/core/fixture
package fixture

import (
	"pimds/internal/cds/seqhash"
	"pimds/internal/sim"
)

type part struct {
	table  *seqhash.Table
	served uint64
}

// freeRide serves a request out of vault state without charging a
// single picosecond: exactly the dodge the analyzer exists to catch.
// CountOp and Stats bookkeeping do not advance the clock.
func (p *part) freeRide(c *sim.PIMCore, m sim.Message) {
	_, ok := p.table.Get(m.Key) // want `call to Table\.Get in handler code \(freeRide\) without charging`
	if ok {
		p.served++
	}
	c.CountOp()
}

// charged pays for its probes through the charged accessor API.
func (p *part) charged(c *sim.PIMCore, m sim.Message) {
	p.table.ResetSteps()
	_, _ = p.table.Get(m.Key)
	c.ReadN(int(p.table.Steps()))
	c.Send(sim.Message{To: m.From, Kind: m.Kind, Key: m.Key})
	c.CountOp()
}

// viaHelper charges through a package-local helper; the analyzer's
// fixpoint follows the call.
func (p *part) viaHelper(c *sim.PIMCore, m sim.Message) {
	p.table.ResetSteps()
	p.table.Put(m.Key, m.Val)
	chargeProbes(c, p.table)
}

func chargeProbes(c *sim.PIMCore, t *seqhash.Table) {
	c.ReadN(int(t.Steps()))
	c.Write()
}

// uncoveredHelper takes the core but never charges anything, directly
// or transitively.
func uncoveredHelper(c *sim.PIMCore, t *seqhash.Table) int {
	return t.Len() // want `call to Table\.Len in handler code \(uncoveredHelper\) without charging`
}

// preload has no core in scope: it is a setup path, cost-free by
// protocol definition, and exempt.
func (p *part) preload(keys []int64) {
	for _, k := range keys {
		p.table.Put(k, k)
	}
}

// cpuSide exercises the CPU flavor of the same rule.
func cpuFreeRide(c *sim.CPU, t *seqhash.Table, k int64) bool {
	_, ok := t.Get(k) // want `call to Table\.Get in handler code \(cpuFreeRide\) without charging`
	return ok
}

func cpuCharged(c *sim.CPU, t *seqhash.Table, k int64) bool {
	t.ResetSteps()
	_, ok := t.Get(k)
	c.MemReadN(int(t.Steps()))
	return ok
}
