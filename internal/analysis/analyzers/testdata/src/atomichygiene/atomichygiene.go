// Fixture for the atomichygiene analyzer: mixed atomic/plain access
// and by-value copies of sync primitives.
package fixture

import (
	"sync"
	"sync/atomic"
)

type mixed struct {
	n     uint64
	clean atomic.Uint64
}

func (m *mixed) incAtomic() {
	atomic.AddUint64(&m.n, 1)
}

func (m *mixed) readPlain() uint64 {
	return m.n // want `n is accessed with sync/atomic elsewhere but read/written plainly here`
}

func (m *mixed) writePlain() {
	m.n = 0 // want `n is accessed with sync/atomic elsewhere`
}

func (m *mixed) typedIsFine() uint64 {
	m.clean.Add(1)
	return m.clean.Load() // ok: typed atomics cannot be accessed plainly
}

var global int64

func bumpGlobal() {
	atomic.AddInt64(&global, 1)
}

func peekGlobal() int64 {
	return global // want `global is accessed with sync/atomic elsewhere`
}

type guarded struct {
	mu sync.Mutex
	v  int
}

func lockByValue(mu sync.Mutex) { // want `parameter or result copies a value containing a sync primitive`
	mu.Lock()
}

func copyGuarded(g *guarded) {
	h := *g // want `assignment copies a value containing a sync primitive`
	_ = h
}

func rangeCopies(gs []guarded) {
	for _, g := range gs { // want `range element copies a value containing a sync primitive`
		_ = g.v
	}
}

func pointerIsFine(g *guarded) *guarded {
	h := g // ok: copies the pointer, not the lock
	return h
}
