package analyzers

import (
	"go/ast"
	"go/types"

	"pimds/internal/analysis"
)

// ObsSafety guards PR 1's contract: observability changes simulated
// results by exactly zero. Metrics and traces flow out of the
// simulation only — handler code may record (Counter.Add,
// Histogram.Observe, Gauge.Set, ...) but must never read a metric
// back, because a read makes simulated behaviour depend on whether and
// how observability is configured (a nil registry hands out nil
// metrics whose read methods return zeros).
//
// Checks, inside handler-context functions (functions with a
// *sim.PIMCore or *sim.CPU parameter) of pimds/internal/sim and
// pimds/internal/core/...:
//
//   - calls to the read API of pimds/internal/obs: Counter.Value,
//     Gauge.Value, FloatGauge.Value, Histogram.N/Mean/Max/Quantile/
//     Percentiles, Registry.Snapshot/WriteJSON;
//
// and additionally, in pimds/internal/core/... only:
//
//   - reads of the simulator's accounting state — sim.Vault counters
//     and sim.CoreStats fields. Algorithms must make decisions from
//     their own protocol state, not from the cost-accounting ledger;
//     the sim package itself and post-run measurement code (no core
//     parameter) are the sanctioned readers.
//
// The same contract covers the profiler (PR 3): any member access on a
// pimds/internal/prof type — span trails, attribution ledgers, reports
// — from handler-context code is flagged. The simulator feeds the
// profiler exclusively through the sim.Profiler interface, and
// post-run code reads it back; handler algorithms must see neither
// side.
//
// In pimds/internal/server the concern inverts: observability must not
// tax the unobserved fast path. Two rules apply:
//
//   - The request tracer's contract is that a span is allocated only
//     for sampled requests, so inside the server hot loops (readLoop,
//     combineLoop, writeLoop — any for/range body) an allocation of
//     the span type (&span{...} or new(span)) must sit behind a
//     conditional (the sampling guard). An unconditional span
//     allocation in a loop charges every request the tracer's cost and
//     is flagged.
//
//   - Metrics-window rotation is ticker-only: (*obs.Window).Rotate and
//     (*health.Engine).Evaluate may be called only from functions
//     marked //pimvet:rotator — the dedicated ticker goroutine that
//     owns the window. A rotation from a reader, combiner, writer or
//     HTTP handler would snapshot the whole registry (allocating,
//     taking the registry mutex) on a request path; handlers read the
//     rotator's cached verdict instead.
//
//   - The pinned combining window is storage-free: functions marked
//     //pimvet:window run while a shard's combiner holds every waiter
//     in its batch captive, so any call into os, syscall, io, bufio or
//     io/fs there — a write, and above all an fsync — would serialize
//     the whole shard behind the disk. Durability is the WAL writer
//     goroutine's job: the window stages bytes into a buffer and hands
//     them off; the writer owns the file.
var ObsSafety = &analysis.Analyzer{
	Name: "obssafety",
	Doc:  "flags handler code whose simulated behaviour can depend on observability state",
	Run:  runObsSafety,
}

// obsReadMethods is the value-returning API of internal/obs.
var obsReadMethods = map[string]bool{
	"Value": true, "N": true, "Mean": true, "Max": true,
	"Quantile": true, "Percentiles": true,
	"Snapshot": true, "WriteJSON": true,
}

func runObsSafety(pass *analysis.Pass) {
	if underPath(pass.Path, serverPath) {
		checkServerSpanAllocs(pass)
		checkServerRotation(pass)
		checkWindowIO(pass)
		return
	}
	inSim := underPath(pass.Path, simPath)
	inCore := underPath(pass.Path, corePath)
	if !inSim && !inCore {
		return
	}
	info := pass.TypesInfo

	for _, fn := range allFuncs(pass.Files) {
		if paramOfType(info, fn.typ, isCoreParam) == nil {
			continue
		}
		inspectShallow(fn.body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := info.Selections[sel]
			if !ok {
				return true
			}
			if typeFromPkg(s.Recv(), profPath, false) {
				pass.Reportf(sel.Sel.Pos(),
					"handler code touches profiler state (%s.%s); the profiler observes the simulation through sim.Profiler only and must stay invisible to handler algorithms",
					namedType(s.Recv()).Obj().Name(), s.Obj().Name())
				return true
			}
			switch obj := s.Obj().(type) {
			case *types.Func:
				if typeFromPkg(s.Recv(), obsPath, false) && obsReadMethods[obj.Name()] {
					pass.Reportf(sel.Sel.Pos(),
						"handler code reads metric state (%s.%s); observability must be write-only from simulated code or results depend on whether metrics are enabled",
						namedType(s.Recv()).Obj().Name(), obj.Name())
				}
			case *types.Var:
				if !inCore || s.Kind() != types.FieldVal {
					return true
				}
				if isSimType(s.Recv(), "Vault") || isSimType(s.Recv(), "CoreStats") {
					pass.Reportf(sel.Sel.Pos(),
						"handler code reads accounting state (%s.%s); algorithm decisions must come from protocol state, not the cost ledger",
						namedType(s.Recv()).Obj().Name(), obj.Name())
				}
			}
			return true
		})
	}
}

// checkServerSpanAllocs enforces the server tracer's fast-path
// contract: inside any loop body, allocating the package's span type
// must be conditional (behind the sampling guard). Unconditional
// allocation means every request — sampled or not — pays for tracing.
func checkServerSpanAllocs(pass *analysis.Pass) {
	info := pass.TypesInfo
	for _, fn := range allFuncs(pass.Files) {
		// Stack of enclosing nodes within this function body; function
		// literals are skipped here because allFuncs yields them as
		// functions in their own right.
		var stack []ast.Node
		ast.Inspect(fn.body, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			if _, ok := n.(*ast.FuncLit); ok && n != fn.body {
				return false
			}
			if isSpanAlloc(pass, info, n) && inUnguardedLoop(stack) {
				pass.Reportf(n.Pos(),
					"span allocated unconditionally inside a hot loop; span allocation must sit behind the sampling guard (if sampled { ... }) so unsampled requests pay nothing for tracing")
			}
			stack = append(stack, n)
			return true
		})
	}
}

// checkServerRotation enforces the window's ticker-only contract in
// the server: calls that drive the metrics window forward —
// (*obs.Window).Rotate and (*health.Engine).Evaluate — are legal only
// inside function declarations marked //pimvet:rotator. Function
// literals are analyzed as functions in their own right and carry no
// mark, so the rotation calls must live in the named rotator functions
// themselves, not in closures they spawn.
func checkServerRotation(pass *analysis.Pass) {
	marked, stray := markedFuncs(pass, analysis.KindRotator)
	reportStray(pass, analysis.KindRotator, stray)
	rotators := make(map[*ast.BlockStmt]bool, len(marked))
	for _, m := range marked {
		rotators[m.body] = true
	}
	info := pass.TypesInfo
	for _, fn := range allFuncs(pass.Files) {
		if rotators[fn.body] {
			continue
		}
		inspectShallow(fn.body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := info.Selections[sel]
			if !ok {
				return true
			}
			name := s.Obj().Name()
			switch {
			case name == "Rotate" && typeFromPkg(s.Recv(), obsPath, false):
				pass.Reportf(sel.Sel.Pos(),
					"window rotation outside a //pimvet:rotator function; rotation is ticker-only — a Rotate on a request path snapshots the whole registry per call")
			case name == "Evaluate" && typeFromPkg(s.Recv(), healthPath, false):
				pass.Reportf(sel.Sel.Pos(),
					"health evaluation outside a //pimvet:rotator function; evaluation runs on the rotation tick only — handlers read the cached verdict")
			}
			return true
		})
	}
}

// windowIOPkgs are the standard-library packages whose every entry
// point touches (or can touch) the filesystem or a file descriptor.
// Inside the pinned combining window any of them is a latency cliff —
// an fsync here stalls the combiner and, with it, every client pinned
// to the batch.
var windowIOPkgs = map[string]bool{
	"os": true, "syscall": true, "io": true, "bufio": true, "io/fs": true,
}

// checkWindowIO enforces the combining window's storage-free contract:
// functions marked //pimvet:window must not call into file-I/O
// packages. The check is shallow per marked function — function
// literals carry no mark and are only flagged if marked themselves —
// because the window property is lexical: the marked function body IS
// the stretch executed under the combiner's pin.
func checkWindowIO(pass *analysis.Pass) {
	marked, stray := markedFuncs(pass, analysis.KindWindow)
	reportStray(pass, analysis.KindWindow, stray)
	info := pass.TypesInfo
	for _, m := range marked {
		inspectShallow(m.body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if p := calleePkgPath(info, call); windowIOPkgs[p] {
				pass.Reportf(call.Pos(),
					"file I/O inside the pinned combining window (%s.%s); a //pimvet:window function runs while the combiner holds its batch captive — stage bytes into the WAL buffer and let the writer goroutine do the I/O",
					p, pkgFunc(info, call).Name())
			}
			return true
		})
	}
}

// isSpanAlloc reports whether n allocates the current package's span
// type: a composite literal span{...} (possibly behind &) or new(span).
func isSpanAlloc(pass *analysis.Pass, info *types.Info, n ast.Node) bool {
	switch e := n.(type) {
	case *ast.CompositeLit:
		return isLocalSpan(pass, info.Types[e].Type)
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok || id.Name != "new" || len(e.Args) != 1 {
			return false
		}
		if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "new" {
			return false
		}
		return isLocalSpan(pass, info.Types[e.Args[0]].Type)
	}
	return false
}

// isLocalSpan reports whether t is the named type "span" declared in
// the package under analysis.
func isLocalSpan(pass *analysis.Pass, t types.Type) bool {
	n := namedType(t)
	return n != nil && n.Obj().Name() == "span" && n.Obj().Pkg() == pass.Pkg
}

// inUnguardedLoop walks the enclosing-node stack from the innermost
// node outward. The allocation is unguarded when a for/range body is
// reached before any conditional construct: an if, switch or select
// between the allocation and the loop is taken to be the sampling
// guard.
func inUnguardedLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.IfStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			return false
		}
	}
	return false
}
