package analyzers

import (
	"go/ast"
	"go/types"

	"pimds/internal/analysis"
)

// ObsSafety guards PR 1's contract: observability changes simulated
// results by exactly zero. Metrics and traces flow out of the
// simulation only — handler code may record (Counter.Add,
// Histogram.Observe, Gauge.Set, ...) but must never read a metric
// back, because a read makes simulated behaviour depend on whether and
// how observability is configured (a nil registry hands out nil
// metrics whose read methods return zeros).
//
// Checks, inside handler-context functions (functions with a
// *sim.PIMCore or *sim.CPU parameter) of pimds/internal/sim and
// pimds/internal/core/...:
//
//   - calls to the read API of pimds/internal/obs: Counter.Value,
//     Gauge.Value, FloatGauge.Value, Histogram.N/Mean/Max/Quantile/
//     Percentiles, Registry.Snapshot/WriteJSON;
//
// and additionally, in pimds/internal/core/... only:
//
//   - reads of the simulator's accounting state — sim.Vault counters
//     and sim.CoreStats fields. Algorithms must make decisions from
//     their own protocol state, not from the cost-accounting ledger;
//     the sim package itself and post-run measurement code (no core
//     parameter) are the sanctioned readers.
//
// The same contract covers the profiler (PR 3): any member access on a
// pimds/internal/prof type — span trails, attribution ledgers, reports
// — from handler-context code is flagged. The simulator feeds the
// profiler exclusively through the sim.Profiler interface, and
// post-run code reads it back; handler algorithms must see neither
// side.
var ObsSafety = &analysis.Analyzer{
	Name: "obssafety",
	Doc:  "flags handler code whose simulated behaviour can depend on observability state",
	Run:  runObsSafety,
}

// obsReadMethods is the value-returning API of internal/obs.
var obsReadMethods = map[string]bool{
	"Value": true, "N": true, "Mean": true, "Max": true,
	"Quantile": true, "Percentiles": true,
	"Snapshot": true, "WriteJSON": true,
}

func runObsSafety(pass *analysis.Pass) {
	inSim := underPath(pass.Path, simPath)
	inCore := underPath(pass.Path, corePath)
	if !inSim && !inCore {
		return
	}
	info := pass.TypesInfo

	for _, fn := range allFuncs(pass.Files) {
		if paramOfType(info, fn.typ, isCoreParam) == nil {
			continue
		}
		inspectShallow(fn.body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := info.Selections[sel]
			if !ok {
				return true
			}
			if typeFromPkg(s.Recv(), profPath, false) {
				pass.Reportf(sel.Sel.Pos(),
					"handler code touches profiler state (%s.%s); the profiler observes the simulation through sim.Profiler only and must stay invisible to handler algorithms",
					namedType(s.Recv()).Obj().Name(), s.Obj().Name())
				return true
			}
			switch obj := s.Obj().(type) {
			case *types.Func:
				if typeFromPkg(s.Recv(), obsPath, false) && obsReadMethods[obj.Name()] {
					pass.Reportf(sel.Sel.Pos(),
						"handler code reads metric state (%s.%s); observability must be write-only from simulated code or results depend on whether metrics are enabled",
						namedType(s.Recv()).Obj().Name(), obj.Name())
				}
			case *types.Var:
				if !inCore || s.Kind() != types.FieldVal {
					return true
				}
				if isSimType(s.Recv(), "Vault") || isSimType(s.Recv(), "CoreStats") {
					pass.Reportf(sel.Sel.Pos(),
						"handler code reads accounting state (%s.%s); algorithm decisions must come from protocol state, not the cost ledger",
						namedType(s.Recv()).Obj().Name(), obj.Name())
				}
			}
			return true
		})
	}
}
