package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"pimds/internal/analysis"
)

// Shared function-fact machinery. Two propagation schemes live here:
//
//   - localFacts/propagate: costcharge's package-local helper
//     propagation, generalized. A positive property ("charges the cost
//     model") spreads from functions that establish it directly to the
//     package-level functions that call them, to a fixpoint.
//
//   - factChecker: on-demand transitive checking across package
//     boundaries for negative properties ("never allocates", "never
//     blocks"). Starting from a marked root, every module function it
//     reaches is scanned with an analyzer-supplied rule; the first
//     unsuppressed violation poisons the whole call chain, and the
//     chain is reported at the root's call site so the finding lands in
//     the package under analysis.

// modulePath is the enclosing module's import-path prefix; calls into
// it are followed, everything else is judged by per-analyzer policy.
const modulePath = "pimds"

func isModulePath(p string) bool {
	return p == modulePath || strings.HasPrefix(p, modulePath+"/")
}

// localFact is one function's direct contribution to a package-local
// positive property plus its package-local call edges.
type localFact struct {
	direct  bool
	callees []*types.Func
}

// propagate computes the transitive closure of a positive property over
// package-level functions: a function has it if it establishes it
// directly or calls a package-local function that has it.
func propagate(fns map[*types.Func]*localFact) map[*types.Func]bool {
	has := make(map[*types.Func]bool)
	for changed := true; changed; {
		changed = false
		for obj, lf := range fns {
			if has[obj] {
				continue
			}
			ok := lf.direct
			for _, callee := range lf.callees {
				if has[callee] {
					ok = true
					break
				}
			}
			if ok {
				has[obj] = true
				changed = true
			}
		}
	}
	return has
}

// violation is one breach of a scan rule inside a function body.
type violation struct {
	pos token.Pos
	msg string
}

// calleeRef is a resolved call with its site, so cross-package findings
// can be reported where the analyzed package makes the call.
type calleeRef struct {
	fn  *types.Func
	pos token.Pos
}

// scanFunc is an analyzer's local rule: scan one function body given
// its package's type information and return the rule violations plus
// the resolved calls worth following.
type scanFunc func(info *types.Info, fn funcNode) ([]violation, []calleeRef)

// funcFact is the memoized verdict for one function: clean, or a
// human-readable predicate explaining the first failure found.
type funcFact struct {
	clean    bool
	why      string // e.g. "allocates via make at seqlist.go:88"
	visiting bool   // cycle guard; cycles resolve optimistically
}

// factChecker computes transitive function facts across the module.
type factChecker struct {
	analyzer string // analyzer name, for callee-package suppression lookups
	lookup   func(string) *analysis.Package
	scan     scanFunc
	facts    map[*types.Func]*funcFact
	indexes  map[*analysis.Package]map[*types.Func]funcNode
}

func newFactChecker(pass *analysis.Pass, scan scanFunc) *factChecker {
	return &factChecker{
		analyzer: pass.Analyzer.Name,
		lookup:   pass.Lookup,
		scan:     scan,
		facts:    make(map[*types.Func]*funcFact),
		indexes:  make(map[*analysis.Package]map[*types.Func]funcNode),
	}
}

// check returns the fact for f, computing and memoizing it on first
// use. Functions outside the module, without available syntax (loader
// absent, load failure, interface methods) are clean by fiat: the
// caller's policy layer decides what to do with opaque callees before
// asking for facts.
func (fc *factChecker) check(f *types.Func) *funcFact {
	if fact, ok := fc.facts[f]; ok {
		if fact.visiting {
			return &funcFact{clean: true} // cycle: optimistic
		}
		return fact
	}
	fact := &funcFact{clean: true, visiting: true}
	fc.facts[f] = fact
	defer func() { fact.visiting = false }()

	if f.Pkg() == nil || fc.lookup == nil {
		return fact
	}
	pkg := fc.lookup(f.Pkg().Path())
	if pkg == nil {
		return fact
	}
	node, ok := fc.index(pkg)[f]
	if !ok {
		return fact // no body here: interface method or external decl
	}
	viols, callees := fc.scan(pkg.Info, node)
	for _, v := range viols {
		posn := pkg.Fset.Position(v.pos)
		if pkg.Suppressed(fc.analyzer, posn) {
			continue
		}
		fact.clean = false
		fact.why = fmt.Sprintf("%s at %s:%d", v.msg, filepath.Base(posn.Filename), posn.Line)
		return fact
	}
	for _, c := range callees {
		if sub := fc.check(c.fn); !sub.clean {
			fact.clean = false
			fact.why = fmt.Sprintf("calls %s, which %s", c.fn.FullName(), sub.why)
			return fact
		}
	}
	return fact
}

// index maps a package's function objects to their declarations.
func (fc *factChecker) index(pkg *analysis.Package) map[*types.Func]funcNode {
	idx, ok := fc.indexes[pkg]
	if !ok {
		idx = make(map[*types.Func]funcNode)
		for _, fn := range allFuncs(pkg.Files) {
			if fn.decl == nil {
				continue
			}
			if obj, ok := pkg.Info.Defs[fn.decl.Name].(*types.Func); ok {
				idx[obj] = fn
			}
		}
		fc.indexes[pkg] = idx
	}
	return idx
}

// markedFn is a function declaration carrying a pimvet annotation.
type markedFn struct {
	funcNode
	mark analysis.Directive
}

// markedFuncs returns the function declarations annotated with
// //pimvet:<kind>. The directive must sit inside the declaration's doc
// comment (a comment block immediately above the func line); marks
// attached to nothing are returned separately so the analyzer can
// surface the typo instead of silently ignoring it.
func markedFuncs(pass *analysis.Pass, kind string) (marked []markedFn, stray []analysis.Directive) {
	for _, file := range pass.Files {
		var marks []analysis.Directive
		for _, d := range analysis.ParseDirectives(pass.Fset, file) {
			if d.Kind == kind {
				marks = append(marks, d)
			}
		}
		if len(marks) == 0 {
			continue
		}
		used := make([]bool, len(marks))
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Doc == nil {
				continue
			}
			lo := pass.Fset.Position(fd.Doc.Pos()).Line
			hi := pass.Fset.Position(fd.Pos()).Line - 1
			for i, d := range marks {
				if d.Pos.Line >= lo && d.Pos.Line <= hi {
					used[i] = true
					marked = append(marked, markedFn{
						funcNode{decl: fd, typ: fd.Type, body: fd.Body}, d,
					})
					break
				}
			}
		}
		for i, d := range marks {
			if !used[i] {
				stray = append(stray, d)
			}
		}
	}
	return marked, stray
}

// reportStray flags mark directives that attach to no function
// declaration, so a misplaced annotation fails loudly.
func reportStray(pass *analysis.Pass, kind string, stray []analysis.Directive) {
	for _, d := range stray {
		pass.ReportPosf(d.Pos,
			"//pimvet:%s is not attached to a function declaration; write it in the function's doc comment", kind)
	}
}
