package analysis

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func TestBuildExcluded(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{"no constraint", "package p\n", false},
		{"race tag", "//go:build race\n\npackage p\n", true},
		{"negated race tag", "//go:build !race\n\npackage p\n", false},
		{"host GOOS", "//go:build " + runtime.GOOS + "\n\npackage p\n", false},
		{"foreign GOOS", "//go:build plan9\n\npackage p\n", runtime.GOOS != "plan9"},
		{"or with satisfied arm", "//go:build race || " + runtime.GOOS + "\n\npackage p\n", false},
		{"and with excluded arm", "//go:build race && " + runtime.GOOS + "\n\npackage p\n", true},
		{"language version", "//go:build go1.18\n\npackage p\n", false},
		{"legacy plus-build alone is inert", "// +build race\n\npackage p\n", false},
		{"constraint after package clause is inert", "package p\n\n//go:build race\n", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := buildExcluded([]byte(tc.src)); got != tc.want {
				t.Errorf("buildExcluded(%q) = %v, want %v", tc.src, got, tc.want)
			}
		})
	}
}

// TestLoaderSkipsTagExcludedFiles builds a module where two files
// declare the same constant behind complementary build tags — exactly
// the internal/testenv race.go/norace.go pattern — and checks the
// loader keeps only the file the default build selects instead of
// type-checking a redeclaration error.
func TestLoaderSkipsTagExcludedFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module tagged\n\ngo 1.21\n")
	write("on.go", "//go:build sometag\n\npackage tagged\n\nconst flag = true\n")
	write("off.go", "//go:build !sometag\n\npackage tagged\n\nconst flag = false\n")

	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.Errors) > 0 {
		t.Fatalf("load errors (redeclaration means tags were ignored): %v", pkg.Errors)
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("loaded %d files, want 1 (off.go only)", len(pkg.Files))
	}
	got := pkg.Fset.Position(pkg.Files[0].Pos()).Filename
	if filepath.Base(got) != "off.go" {
		t.Fatalf("loaded %s, want off.go", got)
	}
}
