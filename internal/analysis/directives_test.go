package analysis

import (
	"go/parser"
	"go/token"
	"reflect"
	"testing"
)

// parseSrc runs the directive parser over a one-package source snippet.
func parseSrc(t *testing.T, src string) []Directive {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return parseDirectives(fset, f)
}

func TestParseDirectives(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want []Directive
	}{
		{
			name: "basic allow",
			src:  "package p\n\n//pimvet:allow determinism: seeded rng\nvar x int\n",
			want: []Directive{{Kind: "allow", Analyzers: []string{"determinism"}, Justification: "seeded rng"}},
		},
		{
			name: "tab between verb and list",
			src:  "package p\n\n//pimvet:allow\tdeterminism,costcharge: reason\nvar x int\n",
			want: []Directive{{Kind: "allow", Analyzers: []string{"determinism", "costcharge"}, Justification: "reason"}},
		},
		{
			name: "tabs and spaces inside list",
			src:  "package p\n\n//pimvet:allow \t determinism ,\tcostcharge : reason text\nvar x int\n",
			want: []Directive{{Kind: "allow", Analyzers: []string{"determinism", "costcharge"}, Justification: "reason text"}},
		},
		{
			name: "trailing comment stays in justification",
			src:  "package p\n\n//pimvet:allow obssafety: snapshot path -- see DESIGN.md §4\nvar x int\n",
			want: []Directive{{Kind: "allow", Analyzers: []string{"obssafety"}, Justification: "snapshot path -- see DESIGN.md §4"}},
		},
		{
			name: "multiple directives on one line",
			src:  "package p\n\n//pimvet:allocfree //pimvet:nonblocking combiner apply\nfunc f() {}\n",
			want: []Directive{
				{Kind: "allocfree"},
				{Kind: "nonblocking", Arg: "combiner apply"},
			},
		},
		{
			name: "allow-file",
			src:  "package p\n\n//pimvet:allow-file dummy: whole file exempt\nvar x int\n",
			want: []Directive{{Kind: "allow-file", Analyzers: []string{"dummy"}, Justification: "whole file exempt"}},
		},
		{
			name: "package override",
			src:  "package p\n\n//pimvet:package pimds/internal/core/fixture\nvar x int\n",
			want: []Directive{{Kind: "package", Arg: "pimds/internal/core/fixture"}},
		},
		{
			name: "package override with tab",
			src:  "package p\n\n//pimvet:package\tpimds/internal/sim\nvar x int\n",
			want: []Directive{{Kind: "package", Arg: "pimds/internal/sim"}},
		},
		{
			name: "mark with note",
			src:  "package p\n\n//pimvet:allocfree wire fast path\nfunc f() {}\n",
			want: []Directive{{Kind: "allocfree", Arg: "wire fast path"}},
		},
		{
			name: "unknown verb is malformed",
			src:  "package p\n\n//pimvet:alow determinism: typo\nvar x int\n",
			want: []Directive{{Kind: "", Arg: "alow determinism: typo"}},
		},
		{
			name: "allow without analyzers is malformed",
			src:  "package p\n\n//pimvet:allow : no names\nvar x int\n",
			want: []Directive{{Kind: "", Arg: "allow : no names"}},
		},
		{
			name: "package without path is malformed",
			src:  "package p\n\n//pimvet:package\nvar x int\n",
			want: []Directive{{Kind: "", Arg: "package"}},
		},
		{
			name: "empty directive is malformed",
			src:  "package p\n\n//pimvet:\nvar x int\n",
			want: []Directive{{Kind: "", Arg: ""}},
		},
		{
			name: "prose citing a directive is inert",
			src:  "package p\n\n// use //pimvet:allow determinism: ... to suppress\nvar x int\n",
			want: nil,
		},
		{
			name: "mixed kinds on one line",
			src:  "package p\n\n//pimvet:allow dummy: a //pimvet:allow-file other: b\nvar x int\n",
			want: []Directive{
				{Kind: "allow", Analyzers: []string{"dummy"}, Justification: "a"},
				{Kind: "allow-file", Analyzers: []string{"other"}, Justification: "b"},
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := parseSrc(t, tt.src)
			if len(got) != len(tt.want) {
				t.Fatalf("got %d directives %+v, want %d", len(got), got, len(tt.want))
			}
			for i := range got {
				g := got[i]
				g.Pos = token.Position{} // position is covered separately
				if !reflect.DeepEqual(g, tt.want[i]) {
					t.Errorf("directive %d = %+v, want %+v", i, g, tt.want[i])
				}
			}
		})
	}
}

// TestMultiDirectivePositions pins that directives sharing a comment get
// distinct positions on the same line, so line-scoped suppression works
// for each of them.
func TestMultiDirectivePositions(t *testing.T) {
	ds := parseSrc(t, "package p\n\n//pimvet:allow a: x //pimvet:allow b: y\nvar v int\n")
	if len(ds) != 2 {
		t.Fatalf("got %d directives, want 2", len(ds))
	}
	if ds[0].Pos.Line != 3 || ds[1].Pos.Line != 3 {
		t.Errorf("lines = %d, %d; want both 3", ds[0].Pos.Line, ds[1].Pos.Line)
	}
	if ds[0].Pos.Column >= ds[1].Pos.Column {
		t.Errorf("columns = %d, %d; want strictly increasing", ds[0].Pos.Column, ds[1].Pos.Column)
	}
}

// TestSuppressorRanges pins the line scoping: an allow suppresses on its
// own line and the line directly below, nothing else.
func TestSuppressorRanges(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d.go", `package p

//pimvet:allow dummy: above
var a int

var b int //pimvet:allow dummy: same line

//pimvet:allow-file other: everywhere
`, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	fd := buildFileDirectives(fset, f)
	for line, want := range map[int]int{3: 1, 4: 1, 5: 0, 6: 1, 7: 1} {
		if got := len(fd.suppressors("dummy", line)); got != want {
			t.Errorf("suppressors(dummy, line %d) = %d, want %d", line, got, want)
		}
	}
	if got := len(fd.suppressors("other", 1)); got != 1 {
		t.Errorf("file-level allow not visible on arbitrary line: got %d, want 1", got)
	}
	if got := len(fd.malformed); got != 0 {
		t.Errorf("unexpected malformed directives: %d", got)
	}
}
