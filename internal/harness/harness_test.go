package harness

import (
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"pimds/internal/model"
)

func TestMixValidate(t *testing.T) {
	if err := Balanced().Validate(); err != nil {
		t.Error(err)
	}
	if err := ReadMostly().Validate(); err != nil {
		t.Error(err)
	}
	if err := (Mix{AddPct: 50, RemovePct: 49}).Validate(); err == nil {
		t.Error("bad mix should fail validation")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(7, Uniform{N: 100}, Balanced())
	b := NewGenerator(7, Uniform{N: 100}, Balanced())
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestGeneratorMixProportions(t *testing.T) {
	g := NewGenerator(11, Uniform{N: 100}, Mix{ContainsPct: 50, AddPct: 30, RemovePct: 20})
	counts := map[OpKind]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[g.Next().Kind]++
	}
	within := func(got, wantPct int) bool {
		want := n * wantPct / 100
		return got > want*9/10 && got < want*11/10
	}
	if !within(counts[Contains], 50) || !within(counts[Add], 30) || !within(counts[Remove], 20) {
		t.Errorf("mix proportions off: %v", counts)
	}
}

func TestKeyDistsStayInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dists := []KeyDist{
		Uniform{N: 64},
		HotRange{N: 64, HotPct: 90, FracPct: 10},
		Zipf{N: 64, S: 1.2},
		rangeDist{lo: 16, hi: 48},
	}
	for _, d := range dists {
		if d.Name() == "" {
			t.Errorf("%T has empty name", d)
		}
		lo := int64(0)
		if rd, ok := d.(rangeDist); ok {
			lo = rd.lo
		}
		for i := 0; i < 5000; i++ {
			k := d.Next(rng)
			if k < lo || k >= d.Space() {
				t.Fatalf("%s produced out-of-range key %d", d.Name(), k)
			}
		}
	}
}

func TestHotRangeIsSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := HotRange{N: 1000, HotPct: 90, FracPct: 10}
	hot := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if h.Next(rng) < 100 {
			hot++
		}
	}
	if hot < n*85/100 {
		t.Errorf("only %d/%d keys in hot range, want ≈ 90%%", hot, n)
	}
}

func TestPreloadKeys(t *testing.T) {
	keys := PreloadKeys(10)
	want := []int64{0, 2, 4, 6, 8}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
}

func TestOpConversions(t *testing.T) {
	op := Op{Kind: Add, Key: 42}
	if l := op.ToList(); int(l.Kind) != int(Add) || l.Key != 42 {
		t.Error("ToList broken")
	}
	if s := op.ToSkip(); int(s.Kind) != int(Add) || s.Key != 42 {
		t.Error("ToSkip broken")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Note:    "a note",
		Columns: []string{"a", "b"},
	}
	tab.AddRow("x", 1.5e6)
	tab.AddRow(3, "y")

	var text strings.Builder
	if err := tab.Write(&text, "table"); err != nil {
		t.Fatal(err)
	}
	out := text.String()
	for _, want := range []string{"== demo ==", "a", "b", "1.5M", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}

	var csv strings.Builder
	if err := tab.Write(&csv, "csv"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "a,b") || !strings.Contains(csv.String(), "x,1.5M") {
		t.Errorf("csv output wrong:\n%s", csv.String())
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		2.5e9:  "2.5G",
		1.25e6: "1.25M",
		50000:  "50K",
		123:    "123",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestHostThroughputCounts(t *testing.T) {
	var sink atomic.Int64
	ops := HostThroughput(2, 10*time.Millisecond, 50*time.Millisecond, func(tid int, rng *rand.Rand) func() {
		return func() { sink.Add(1) }
	})
	// A trivial op runs at many millions per second; just check the
	// loop actually measured something substantial.
	if ops < 1e6 {
		t.Errorf("throughput = %v, expected millions of trivial ops/s", ops)
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) < 15 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Description == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := FindExperiment("fig2"); !ok {
		t.Error("fig2 not found")
	}
	if _, ok := FindExperiment("nope"); ok {
		t.Error("bogus id found")
	}
}

// TestSimExperimentsSmoke runs every simulator-only experiment in quick
// mode and checks each produces non-empty tables with plausible rows.
func TestSimExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still take a few seconds")
	}
	opts := DefaultOptions()
	opts.Quick = true
	simOnly := []string{"table1", "table2", "queue", "fig2", "fig4",
		"queue-short", "queue-pipeline", "queue-threshold", "queue-notify",
		"queue-fatnodes", "queue-cpusplit", "mig-remote",
		"queue-slowcpu", "queue-scaling", "list-sizes", "skip-combining",
		"list-claims", "skip-claims", "rebalance", "migbatch", "r1sweep",
		"hash", "latency", "bandwidth"}
	for _, id := range simOnly {
		id := id
		t.Run(id, func(t *testing.T) {
			exp, ok := FindExperiment(id)
			if !ok {
				t.Fatalf("experiment %q missing", id)
			}
			tables := exp.Run(opts)
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tab := range tables {
				if tab.Title == "" || len(tab.Columns) == 0 || len(tab.Rows) == 0 {
					t.Errorf("incomplete table %+v", tab.Title)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Columns) {
						t.Errorf("row width %d != %d columns in %s", len(row), len(tab.Columns), tab.Title)
					}
				}
			}
		})
	}
}

// TestClaimsHold asserts the boolean columns of the claims experiments
// are all true — the paper's headline conclusions.
func TestClaimsHold(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several simulations")
	}
	opts := DefaultOptions()
	for _, id := range []string{"list-claims", "skip-claims"} {
		exp, _ := FindExperiment(id)
		for _, tab := range exp.Run(opts) {
			for _, row := range tab.Rows {
				if row[len(row)-1] != "true" {
					t.Errorf("%s: claim failed: %v", id, row)
				}
			}
		}
	}
}

// TestSimListMatchesModelProperty: the SimList throughput tracks the
// model across random thread counts for the parallel row.
func TestSimListMatchesModelProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	so := DefaultSimOpts()
	so.Warmup /= 5
	so.Measure /= 5
	f := func(pRaw uint8) bool {
		p := int(pRaw%12) + 1
		got := SimList(so, model.FineGrainedLockList, p, 400).Ops
		want := model.ListFineGrainedLocks(so.Params, model.ListConfig{N: 200, P: p})
		return got > want*0.6 && got < want*1.4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestHostExperimentsSmoke exercises the host-emulation paths with tiny
// windows; it validates table structure, not performance.
func TestHostExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real goroutine workloads")
	}
	opts := DefaultOptions()
	opts.Quick = true
	opts.HostThreads = 2
	opts.HostMeasure = 30 * time.Millisecond
	for _, id := range []string{"fig2-host", "fig4-host", "queue-host", "stack"} {
		id := id
		t.Run(id, func(t *testing.T) {
			exp, ok := FindExperiment(id)
			if !ok {
				t.Fatalf("experiment %q missing", id)
			}
			for _, tab := range exp.Run(opts) {
				if len(tab.Rows) == 0 {
					t.Errorf("%s: empty table %q", id, tab.Title)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Columns) {
						t.Errorf("%s: row width mismatch in %q", id, tab.Title)
					}
				}
			}
		})
	}
}
