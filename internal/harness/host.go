package harness

//pimvet:allow-file determinism: host-emulation harness (the paper's Section 6 methodology) deliberately measures real wall-clock time on real goroutines; nothing here feeds back into simulated virtual time

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// HostThroughput measures a real (goroutine-based) concurrent data
// structure: it runs p worker goroutines in a closed loop for the
// measurement window (after a warmup) and returns operations per
// second. worker is called once per goroutine and returns that
// goroutine's per-operation function.
//
// This is the paper's host-emulation methodology: the flat-combining
// structures' host throughput, multiplied by r1, estimates the
// PIM-managed structures (Figures 2 and 4).
func HostThroughput(p int, warmup, measure time.Duration, worker func(tid int, rng *rand.Rand) func()) float64 {
	var (
		started   = make(chan struct{})
		stop      atomic.Bool
		measuring atomic.Bool
		counted   atomic.Int64
		wg        sync.WaitGroup
	)
	for tid := 0; tid < p; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			op := worker(tid, rand.New(rand.NewSource(int64(tid)*7919+1)))
			<-started
			for !stop.Load() {
				op()
				if measuring.Load() {
					counted.Add(1)
				}
			}
		}(tid)
	}
	close(started)
	time.Sleep(warmup)
	measuring.Store(true)
	t0 := time.Now()
	time.Sleep(measure)
	measuring.Store(false)
	elapsed := time.Since(t0)
	stop.Store(true)
	wg.Wait()
	return float64(counted.Load()) / elapsed.Seconds()
}
