package harness_test

import (
	"testing"

	"pimds/internal/harness"
	"pimds/internal/testenv"
)

// TestGeneratorNextAllocs pins Generator.Next's //pimvet:allocfree
// annotation across the key distributions — in particular the Zipf
// path, whose source is cached at construction instead of being rebuilt
// (and allocated) per draw.
func TestGeneratorNextAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("AllocsPerRun is not meaningful under the race detector")
	}
	dists := map[string]harness.KeyDist{
		"uniform": harness.Uniform{N: 1 << 16},
		"zipf":    harness.Zipf{N: 1 << 16, S: 1.2},
		"hot":     harness.HotRange{N: 1 << 16, HotPct: 90, FracPct: 10},
	}
	for name, dist := range dists {
		t.Run(name, func(t *testing.T) {
			g := harness.NewGenerator(1, dist, harness.Balanced())
			var sink harness.Op
			avg := testing.AllocsPerRun(1000, func() {
				sink = g.Next()
			})
			if avg != 0 {
				t.Errorf("Generator.Next(%s): %.1f allocs/op, want 0", name, avg)
			}
			_ = sink
		})
	}
}

// TestZipfCachedStreamMatchesInterface verifies the cached Zipf source
// draws the exact key stream the stateless interface path would:
// rand.NewZipf consumes nothing from the rng at construction, so the
// two paths see identical randomness.
func TestZipfCachedStreamMatchesInterface(t *testing.T) {
	z := harness.Zipf{N: 1 << 12, S: 1.3}
	mix := harness.ReadMostly()
	a := harness.NewGenerator(42, z, mix)
	b := harness.NewGenerator(42, uncached{z}, mix)
	for i := 0; i < 4096; i++ {
		if ga, gb := a.Next(), b.Next(); ga != gb {
			t.Fatalf("op %d diverged: cached %+v, interface %+v", i, ga, gb)
		}
	}
}

// uncached hides the Zipf concrete type from NewGenerator's cache
// check, forcing the per-call interface path.
type uncached struct{ harness.Zipf }
