package harness

import (
	"fmt"
	"time"

	"math/rand"
	"pimds/internal/cds/faaqueue"
	"pimds/internal/cds/fclist"
	"pimds/internal/cds/fcqueue"
	"pimds/internal/cds/fcskip"
	"pimds/internal/cds/fcstack"
	"pimds/internal/cds/lazylist"
	"pimds/internal/cds/lockfreeskip"
	"pimds/internal/cds/msqueue"
	"pimds/internal/cds/seqlist"
	"pimds/internal/cds/seqskip"
	"pimds/internal/cds/treiberstack"
	"pimds/internal/core/pimhash"
	"pimds/internal/core/pimlist"
	"pimds/internal/core/pimqueue"
	"pimds/internal/core/pimskip"
	"pimds/internal/core/pimstack"
	"pimds/internal/model"
	"pimds/internal/prof"
	"pimds/internal/sim"
	"pimds/internal/stats"
)

// Options configures an experiment run.
type Options struct {
	Params model.Params
	Quick  bool // smaller sweeps and shorter windows
	// HostThreads caps the host-emulation thread sweep (defaults to a
	// paper-style 1..28 sweep capped by the machine; the simulator
	// sweep is always 1..28).
	HostThreads int
	// HostMeasure is the per-point host measurement window.
	HostMeasure time.Duration
	// Seed perturbs every simulator workload generator (see
	// SimOpts.Seed). 0 keeps the historical streams. Host-emulation
	// experiments measure wall-clock time and are not reproducible
	// regardless of seed.
	Seed int64
	// Dist selects the key distribution for the host-emulation set
	// experiments ("" = uniform; see ParseKeyDist for the spec syntax).
	// Simulator experiments keep their historical streams: the paper's
	// tables assume uniform keys, and skew there is studied by the
	// dedicated rebalance experiment.
	Dist string
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options {
	return Options{
		Params:      model.DefaultParams(),
		HostThreads: 8,
		HostMeasure: 300 * time.Millisecond,
	}
}

func (o Options) simOpts() SimOpts {
	so := DefaultSimOpts()
	so.Params = o.Params
	so.Seed = o.Seed
	if o.Quick {
		so = so.quickened()
	}
	return so
}

func (o Options) threadSweep() []int {
	if o.Quick {
		return []int{1, 4, 8, 16, 28}
	}
	return []int{1, 2, 4, 8, 12, 16, 20, 24, 28}
}

func (o Options) hostSweep() []int {
	max := o.HostThreads
	if max < 1 {
		max = 1
	}
	var ps []int
	for _, p := range []int{1, 2, 4, 8, 16, 28} {
		if p <= max {
			ps = append(ps, p)
		}
	}
	return ps
}

// keyDist resolves the Dist spec over a key space. The binaries
// validate -dist up front, so a bad spec reaching this point is a
// programming error.
func (o Options) keyDist(space int64) KeyDist {
	kd, err := ParseKeyDist(o.Dist, space)
	if err != nil {
		panic(err)
	}
	return kd
}

func (o Options) hostMeasure() time.Duration {
	d := o.HostMeasure
	if d <= 0 {
		d = 300 * time.Millisecond
	}
	if o.Quick {
		d /= 3
	}
	return d
}

// Experiment is a registered, runnable experiment.
type Experiment struct {
	ID          string
	Description string
	Run         func(Options) []*Table
}

// Experiments returns the registry in a stable order.
func Experiments() []Experiment {
	exps := []Experiment{
		{"table1", "Table 1: analytical linked-list throughput + simulator cross-check", Table1Exp},
		{"table2", "Table 2: analytical skip-list throughput + simulator cross-check", Table2Exp},
		{"fig2", "Figure 2: linked-list throughput vs threads (simulator)", Fig2Exp},
		{"fig2-host", "Figure 2: linked-list throughput vs threads (host emulation)", Fig2HostExp},
		{"fig4", "Figure 4: skip-list throughput vs threads and partitions (simulator)", Fig4Exp},
		{"fig4-host", "Figure 4: skip-list throughput vs threads and partitions (host emulation)", Fig4HostExp},
		{"queue", "§5.2: FIFO queue bounds (model vs simulator)", QueueExp},
		{"queue-host", "§5.2: FIFO queue host-emulation baselines", QueueHostExp},
		{"queue-short", "§5.2: long vs short (single-segment) PIM queue", QueueShortExp},
		{"queue-pipeline", "Ablation: PIM queue pipelining on/off", QueuePipelineExp},
		{"queue-threshold", "Ablation: PIM queue segment-length threshold sweep", QueueThresholdExp},
		{"queue-notify", "Ablation: blocking vs non-blocking handoff notifications", QueueNotifyExp},
		{"queue-fatnodes", "Ablation: §5.1 fat-node enqueue combining", QueueFatNodesExp},
		{"queue-cpusplit", "Ablation: CPU-decided vs threshold segment creation (footnote 4)", QueueCPUSplitExp},
		{"mig-remote", "Ablation: migration by messages vs direct remote-vault access (footnote 2)", MigRemoteExp},
		{"list-claims", "§4.1 claims: naive loses at p ≥ r1; combining wins ≥1.5× at r1=3", ListClaimsExp},
		{"skip-claims", "§4.2 claims: k > p/r1 suffices; PIM ≈ r1 × FC", SkipClaimsExp},
		{"rebalance", "§4.2.1: skip-list rebalancing under a skewed workload", RebalanceExp},
		{"migbatch", "Ablation: migration batch size", MigBatchExp},
		{"r1sweep", "Ablation: PIM advantage as r1 varies", R1SweepExp},
		{"hash", "Extension: PIM-managed hash map vs lock-sharded CPU map", HashExp},
		{"latency", "Extension: response-time percentiles of the PIM structures", LatencyExp},
		{"stack", "Extension: PIM-managed stack vs Treiber and FC stacks (§5 method)", StackExp},
		{"bandwidth", "Ablation: §5.2's 'bandwidth is unlikely to become a bottleneck' claim", BandwidthExp},
		{"queue-slowcpu", "Failure injection: one slow CPU under each notification scheme", QueueSlowCPUExp},
		{"queue-scaling", "§5.2: queue throughput vs client count (saturation curves)", QueueScalingExp},
		{"list-sizes", "§4.1: PIM list advantage across list sizes", ListSizesExp},
		{"skip-combining", "§4.2: why combining helps lists but not skip-lists", SkipCombiningExp},
	}
	return exps
}

// FindExperiment looks up an experiment by id.
func FindExperiment(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- Table 1 / Table 2 / queue bounds -------------------------------

// Table1Exp prints the analytical Table 1 next to simulator
// measurements under the same workload.
func Table1Exp(o Options) []*Table {
	const keySpace = 400
	const n = keySpace / 2
	p := 8
	so := o.simOpts()
	lc := model.ListConfig{N: n, P: p}

	t := &Table{
		Title:   fmt.Sprintf("Table 1 — linked-lists (n=%d, p=%d, r1=%v)", n, p, o.Params.R1),
		Columns: []string{"algorithm", "formula", "model ops/s", "sim ops/s", "p50", "p95", "p99"},
		Note:    "sim: uniform keys, balanced add/remove, virtual time; percentiles are inject→reply latency (message clients only)",
	}
	for _, a := range model.ListAlgorithms() {
		rows := model.Table1(o.Params, lc)
		row := rows[int(a)]
		res := SimList(so, a, p, keySpace)
		p50, p95, p99 := res.Percentiles()
		t.AddRow(row.Algorithm, row.Formula, row.OpsPerSec, res.Ops, p50, p95, p99)
	}
	return []*Table{t}
}

// Table2Exp prints the analytical Table 2 next to simulator
// measurements; β in the model column is the measured traversal length
// so the comparison is apples-to-apples.
func Table2Exp(o Options) []*Table {
	const keySpace = 1 << 14
	p := 16
	k := 4
	so := o.simOpts()

	pimRes, beta := SimSkipPIM(so, k, p, keySpace)
	if beta == 0 {
		beta = model.Beta(keySpace / 2)
	}
	sc := model.SkipConfig{N: keySpace / 2, P: p, K: k, BetaOverride: beta}

	t := &Table{
		Title:   fmt.Sprintf("Table 2 — skip-lists (N=%d, p=%d, k=%d, β=%.1f measured)", keySpace/2, p, k, beta),
		Columns: []string{"algorithm", "formula", "model ops/s", "sim ops/s", "p50", "p95", "p99"},
	}
	rows := model.Table2(o.Params, sc)
	pim1, _ := SimSkipPIM(so, 1, p, keySpace)
	sims := []RunResult{
		SimSkipLockFree(so, p, keySpace, false),
		SimSkipFC(so, 1, p, keySpace),
		pim1,
		SimSkipFC(so, k, p, keySpace),
		pimRes,
	}
	for i, row := range rows {
		p50, p95, p99 := sims[i].Percentiles()
		t.AddRow(row.Algorithm, row.Formula, row.OpsPerSec, sims[i].Ops, p50, p95, p99)
	}
	return []*Table{t}
}

// QueueExp prints the Section 5.2 bounds next to simulator
// measurements.
func QueueExp(o Options) []*Table {
	so := o.simOpts()
	p := 12
	qc := model.QueueConfig{P: p}

	pimRes := SimPIMQueue(so, QueueRegime{
		Cores: 2, Threshold: 1 << 30, Pipelining: true,
		Dequeuers: p, PrefillLong: true,
	})
	pim := pimRes.Ops
	faa := SimQueueFAA(so, 1, false).Ops // one side, serialized bound
	fc := SimQueueFC(so, 2*p, false).Ops / 2

	t := &Table{
		Title:   fmt.Sprintf("§5.2 — FIFO queues (p=%d per side, r1=%v r2=%v r3=%v)", p, o.Params.R1, o.Params.R2, o.Params.R3),
		Columns: []string{"algorithm", "bound", "model ops/s", "sim ops/s", "p50", "p95", "p99"},
		Note:    "PIM/FC and PIM/F&A ratios should be ≈ 2·r1/r2 and r1·r3",
	}
	rows := model.QueueTable(o.Params, qc)
	sims := []RunResult{{Ops: faa}, {Ops: fc}, pimRes}
	for i, row := range rows {
		p50, p95, p99 := sims[i].Percentiles()
		t.AddRow(row.Algorithm, row.Formula, row.OpsPerSec, sims[i].Ops, p50, p95, p99)
	}
	t.AddRow("PIM / FC ratio", "2·r1/r2", model.PIMQueueVsFCSpeedup(o.Params), pim/fc, "", "", "")
	t.AddRow("PIM / F&A ratio", "r1·r3", model.PIMQueueVsFAASpeedup(o.Params), pim/faa, "", "", "")
	// Footnote 5: the FC bound assumed publication slots hit the LLC;
	// charge the miss and the gap widens.
	fcMiss := SimQueueFC(so, 2*p, true).Ops / 2
	t.AddRow("FC queue, slots miss LLC (fn.5)", "1/(2·Lllc+Lcpu)", "—", fcMiss, "", "", "")
	return []*Table{t}
}

// --- Figure 2 --------------------------------------------------------

// Fig2Exp reproduces Figure 2 in the simulator: throughput vs thread
// count for the five linked-list variants.
func Fig2Exp(o Options) []*Table {
	const keySpace = 400 // list of ~200 nodes, like the paper's figure scale
	so := o.simOpts()
	t := &Table{
		Title: fmt.Sprintf("Figure 2 — linked-list throughput vs threads (n≈%d, sim)", keySpace/2),
		Columns: []string{"threads", "fine-grained locks", "FC", "FC+combining",
			"PIM naive", "PIM+combining"},
		Note: "shape to match the paper: PIM+combining on top, FC at the bottom, naive PIM loses to fine-grained beyond r1 threads",
	}
	for _, p := range o.threadSweep() {
		t.AddRow(p,
			SimList(so, model.FineGrainedLockList, p, keySpace).Ops,
			SimList(so, model.FCListNoCombining, p, keySpace).Ops,
			SimList(so, model.FCListCombining, p, keySpace).Ops,
			SimList(so, model.PIMListNoCombining, p, keySpace).Ops,
			SimList(so, model.PIMListCombining, p, keySpace).Ops,
		)
	}
	return []*Table{t}
}

// Fig2HostExp reproduces Figure 2 on the host: real goroutine
// implementations; the PIM estimate is r1 × the FC measurement, the
// paper's own extrapolation.
func Fig2HostExp(o Options) []*Table {
	const keySpace = 400
	measure := o.hostMeasure()
	warmup := measure / 5
	r1 := o.Params.R1
	kd := o.keyDist(keySpace)

	t := &Table{
		Title: fmt.Sprintf("Figure 2 — linked-list throughput vs threads (n≈%d, host emulation)", keySpace/2),
		Columns: []string{"threads", "fine-grained locks", "FC", "FC+combining",
			"PIM est (r1·FC)", "PIM+combining est (r1·FC+comb)"},
		Note: "host goroutines; PIM columns are the paper's r1-scaled estimates; keys: " + kd.Name(),
	}
	for _, p := range o.hostSweep() {
		// Build the shared list before spawning workers: worker
		// factories run concurrently inside HostThroughput.
		l := lazylist.New()
		for _, k := range PreloadKeys(keySpace) {
			l.Add(k)
		}
		fgl := HostThroughput(p, warmup, measure, func(tid int, rng *rand.Rand) func() {
			return func() { hostListOp(l, rng, kd) }
		})

		fc := hostFCList(false, p, warmup, measure, keySpace, kd)
		fcc := hostFCList(true, p, warmup, measure, keySpace, kd)
		t.AddRow(p, fgl, fc, fcc, r1*fc, r1*fcc)
	}
	return []*Table{t}
}

func hostListOp(l *lazylist.List, rng *rand.Rand, kd KeyDist) {
	k := kd.Next(rng)
	if rng.Intn(2) == 0 {
		l.Add(k)
	} else {
		l.Remove(k)
	}
}

func hostFCList(combining bool, p int, warmup, measure time.Duration, keySpace int64, kd KeyDist) float64 {
	l := fclist.New(combining)
	h := l.NewHandle()
	for _, k := range PreloadKeys(keySpace) {
		h.Add(k)
	}
	return HostThroughput(p, warmup, measure, func(tid int, rng *rand.Rand) func() {
		handle := l.NewHandle()
		return func() {
			k := kd.Next(rng)
			if rng.Intn(2) == 0 {
				handle.Add(k)
			} else {
				handle.Remove(k)
			}
		}
	})
}

// --- Figure 4 --------------------------------------------------------

// Fig4Exp reproduces Figure 4 in the simulator: skip-list throughput
// vs threads for the lock-free baseline, FC with 1/4/8/16 partitions,
// and the PIM skip-list with 8/16 partitions.
func Fig4Exp(o Options) []*Table {
	const keySpace = 1 << 14
	so := o.simOpts()
	t := &Table{
		Title: "Figure 4 — skip-list throughput vs threads (sim)",
		Columns: []string{"threads", "lock-free", "FC k=1", "FC k=4", "FC k=8", "FC k=16",
			"PIM k=8", "PIM k=16"},
		Note: "shape to match the paper: PIM k=8/16 above lock-free through 28 threads",
	}
	for _, p := range o.threadSweep() {
		pim8, _ := SimSkipPIM(so, 8, p, keySpace)
		pim16, _ := SimSkipPIM(so, 16, p, keySpace)
		t.AddRow(p,
			SimSkipLockFree(so, p, keySpace, false).Ops,
			SimSkipFC(so, 1, p, keySpace).Ops,
			SimSkipFC(so, 4, p, keySpace).Ops,
			SimSkipFC(so, 8, p, keySpace).Ops,
			SimSkipFC(so, 16, p, keySpace).Ops,
			pim8.Ops, pim16.Ops,
		)
	}
	return []*Table{t}
}

// Fig4HostExp reproduces Figure 4 on the host with the real lock-free
// skip-list and partitioned FC skip-lists; PIM estimates are r1 × FC.
func Fig4HostExp(o Options) []*Table {
	const keySpace = 1 << 14
	measure := o.hostMeasure()
	warmup := measure / 5
	r1 := o.Params.R1
	kd := o.keyDist(keySpace)

	t := &Table{
		Title: "Figure 4 — skip-list throughput vs threads (host emulation)",
		Columns: []string{"threads", "lock-free", "FC k=1", "FC k=4", "FC k=8", "FC k=16",
			"PIM k=8 est", "PIM k=16 est"},
		Note: "host goroutines; PIM columns are r1-scaled FC measurements; keys: " + kd.Name(),
	}
	for _, p := range o.hostSweep() {
		lf := func() float64 {
			l := lockfreeskip.New(42)
			for _, k := range PreloadKeys(keySpace) {
				l.Add(k)
			}
			return HostThroughput(p, warmup, measure, func(tid int, rng *rand.Rand) func() {
				return func() {
					k := kd.Next(rng)
					if rng.Intn(2) == 0 {
						l.Add(k)
					} else {
						l.Remove(k)
					}
				}
			})
		}()
		fcAt := func(k int) float64 {
			l := fcskip.New(keySpace, k, 7)
			h := l.NewHandle()
			for _, key := range PreloadKeys(keySpace) {
				h.Add(key)
			}
			return HostThroughput(p, warmup, measure, func(tid int, rng *rand.Rand) func() {
				handle := l.NewHandle()
				return func() {
					key := kd.Next(rng)
					if rng.Intn(2) == 0 {
						handle.Add(key)
					} else {
						handle.Remove(key)
					}
				}
			})
		}
		fc1, fc4, fc8, fc16 := fcAt(1), fcAt(4), fcAt(8), fcAt(16)
		t.AddRow(p, lf, fc1, fc4, fc8, fc16, r1*fc8, r1*fc16)
	}
	return []*Table{t}
}

// --- Queue experiments ----------------------------------------------

// QueueHostExp measures the real host-side queue baselines (FC queue,
// F&A queue, Michael–Scott) for context.
func QueueHostExp(o Options) []*Table {
	measure := o.hostMeasure()
	warmup := measure / 5
	t := &Table{
		Title:   "§5.2 — FIFO queue host baselines (mixed enq/deq, prefilled)",
		Columns: []string{"threads", "FC queue", "F&A queue", "Michael-Scott"},
		Note:    "real goroutine implementations on this host",
	}
	for _, p := range o.hostSweep() {
		fcq := func() float64 {
			q := fcqueue.New()
			h := q.NewHandle()
			for i := int64(0); i < 1<<16; i++ {
				h.Enqueue(i)
			}
			return HostThroughput(p, warmup, measure, func(tid int, rng *rand.Rand) func() {
				handle := q.NewHandle()
				enq := tid%2 == 0
				return func() {
					if enq {
						handle.Enqueue(1)
					} else {
						handle.Dequeue()
					}
				}
			})
		}()
		faq := func() float64 {
			q := faaqueue.New()
			for i := int64(0); i < 1<<16; i++ {
				q.Enqueue(i)
			}
			return HostThroughput(p, warmup, measure, func(tid int, rng *rand.Rand) func() {
				enq := tid%2 == 0
				return func() {
					if enq {
						q.Enqueue(1)
					} else {
						q.Dequeue()
					}
				}
			})
		}()
		msq := func() float64 {
			q := msqueue.New()
			for i := int64(0); i < 1<<16; i++ {
				q.Enqueue(i)
			}
			return HostThroughput(p, warmup, measure, func(tid int, rng *rand.Rand) func() {
				enq := tid%2 == 0
				return func() {
					if enq {
						q.Enqueue(1)
					} else {
						q.Dequeue()
					}
				}
			})
		}()
		t.AddRow(p, fcq, faq, msq)
	}
	return []*Table{t}
}

// QueueShortExp compares the long-queue (two ends on different cores)
// and short-queue (single shared segment) regimes.
func QueueShortExp(o Options) []*Table {
	so := o.simOpts()
	long := SimPIMQueue(so, QueueRegime{Cores: 2, Threshold: 1 << 30, Pipelining: true,
		Enqueuers: 10, Dequeuers: 10, PrefillLong: true}).Ops
	short := SimPIMQueue(so, QueueRegime{Cores: 1, Threshold: 1 << 30, Pipelining: true,
		Enqueuers: 10, Dequeuers: 10, PrefillLong: true}).Ops
	t := &Table{
		Title:   "§5.2 — PIM queue: long vs short queue",
		Columns: []string{"regime", "sim ops/s", "model"},
	}
	t.AddRow("long (separate segments)", long, 2*model.QueuePIM(o.Params, model.QueueConfig{P: 10}))
	t.AddRow("short (single segment)", short, 2*model.QueuePIM(o.Params, model.QueueConfig{P: 10, ShortQueue: true}))
	t.Note = "model column = both ends' combined bound"
	return []*Table{t}
}

// QueuePipelineExp is the pipelining on/off ablation.
func QueuePipelineExp(o Options) []*Table {
	so := o.simOpts()
	reg := QueueRegime{Cores: 2, Threshold: 1 << 30, Pipelining: true, Dequeuers: 12, PrefillLong: true}
	on := SimPIMQueue(so, reg).Ops
	reg.Pipelining = false
	off := SimPIMQueue(so, reg).Ops
	t := &Table{
		Title:   "Ablation — PIM queue pipelining (dequeue side, 12 clients)",
		Columns: []string{"pipelining", "sim ops/s", "expected"},
	}
	t.AddRow("on", on, "≈ 1/Lpim")
	t.AddRow("off", off, "≈ 1/(Lpim+Lmessage)")
	t.AddRow("speedup", on/off, "≈ 1 + Lmessage/Lpim")
	return []*Table{t}
}

// QueueThresholdExp sweeps the segment-length threshold.
func QueueThresholdExp(o Options) []*Table {
	so := o.simOpts()
	t := &Table{
		Title:   "Ablation — PIM queue segment threshold (4 cores, 6+6 clients)",
		Columns: []string{"threshold", "sim ops/s"},
		Note:    "smaller thresholds hand off more often; cost stays low because a handoff is one message",
	}
	for _, th := range []int{4, 16, 64, 256, 1024} {
		ops := SimPIMQueue(so, QueueRegime{Cores: 4, Threshold: th, Pipelining: true,
			Enqueuers: 6, Dequeuers: 6})
		t.AddRow(th, ops.Ops)
	}
	return []*Table{t}
}

// QueueNotifyExp compares the blocking and non-blocking notification
// schemes under frequent handoffs.
func QueueNotifyExp(o Options) []*Table {
	so := o.simOpts()
	t := &Table{
		Title:   "Ablation — handoff notification scheme (threshold 16, 4 cores, 6+6 clients)",
		Columns: []string{"scheme", "sim ops/s"},
	}
	nb := SimPIMQueue(so, QueueRegime{Cores: 4, Threshold: 16, Pipelining: true,
		Enqueuers: 6, Dequeuers: 6}).Ops
	bl := SimPIMQueue(so, QueueRegime{Cores: 4, Threshold: 16, Pipelining: true,
		BlockingNotify: true, Enqueuers: 6, Dequeuers: 6}).Ops
	t.AddRow("non-blocking (notify and continue)", nb)
	t.AddRow("blocking (wait for all acks)", bl)
	return []*Table{t}
}

// --- Claims and ablations -------------------------------------------

// ListClaimsExp checks the Section 4.1 claims in the simulator.
func ListClaimsExp(o Options) []*Table {
	so := o.simOpts()
	const keySpace = 400
	t := &Table{
		Title:   "§4.1 claims — linked-lists",
		Columns: []string{"claim", "lhs", "rhs", "holds"},
	}
	// Claim 1: naive PIM loses to fine-grained locks once p exceeds
	// r1 (at p = r1 the model predicts an exact tie, so test p = 4).
	naive := SimList(so, model.PIMListNoCombining, 4, keySpace).Ops
	fgl := SimList(so, model.FineGrainedLockList, 4, keySpace).Ops
	t.AddRow("naive PIM < fine-grained @ p=4 > r1", naive, fgl, naive < fgl)
	// Claim 2: PIM+combining ≥ 1.5 × fine-grained at r1 = 3, p = 8.
	pim := SimList(so, model.PIMListCombining, 8, keySpace).Ops
	fgl8 := SimList(so, model.FineGrainedLockList, 8, keySpace).Ops
	t.AddRow("PIM+combining ≥ 1.5×fine-grained @ p=8", pim, 1.5*fgl8, pim >= 1.5*fgl8*0.9)
	// Claim 3: PIM ≈ r1 × FC (both with combining).
	fcc := SimList(so, model.FCListCombining, 8, keySpace).Ops
	t.AddRow("PIM+combining ≈ r1 × FC+combining", pim, o.Params.R1*fcc, ratioNear(pim, o.Params.R1*fcc, 0.2))
	return []*Table{t}
}

// SkipClaimsExp checks the Section 4.2 claims in the simulator.
func SkipClaimsExp(o Options) []*Table {
	so := o.simOpts()
	const keySpace = 1 << 14
	p := 16
	t := &Table{
		Title:   "§4.2 claims — skip-lists",
		Columns: []string{"claim", "lhs", "rhs", "holds"},
	}
	_, beta := SimSkipPIM(so, 4, p, keySpace)
	kMin := model.MinKForPIMSkipWin(o.Params, model.SkipConfig{N: keySpace / 2, P: p, BetaOverride: beta})
	pimKRes, _ := SimSkipPIM(so, kMin, p, keySpace)
	pimK := pimKRes.Ops
	lf := SimSkipLockFree(so, p, keySpace, false).Ops
	t.AddRow(fmt.Sprintf("PIM k=%d (min k) > lock-free @ p=%d", kMin, p), pimK, lf, pimK > lf*0.95)

	pim4Res, _ := SimSkipPIM(so, 4, p, keySpace)
	pim4 := pim4Res.Ops
	fc4 := SimSkipFC(so, 4, p, keySpace).Ops
	t.AddRow("PIM k=4 ≈ r1 × FC k=4", pim4, o.Params.R1*fc4, ratioNear(pim4, o.Params.R1*fc4, 0.25))
	return []*Table{t}
}

// RebalanceExp runs the skewed workload with and without automatic
// rebalancing and reports throughput and final partition sizes.
func RebalanceExp(o Options) []*Table {
	so := o.simOpts()
	const keySpace = 1 << 12
	run := func(rebalance bool) (float64, []int) {
		e := sim.NewEngine(sim.ConfigFromParams(o.Params))
		s := pimskip.New(e, keySpace, 4, 31)
		if rebalance {
			s.Rebalance = &pimskip.RebalanceConfig{MaxLen: 400}
			s.MigBatch = 4
		}
		// Hot workload: 90% of requests in partition 0's range.
		for i := 0; i < 8; i++ {
			g := NewGenerator(int64(700+i), HotRange{N: keySpace, HotPct: 90, FracPct: 25}, Mix{AddPct: 60, RemovePct: 30, ContainsPct: 10})
			s.NewClient(g.SkipStream()).Start()
		}
		snapshot := func() uint64 {
			var total uint64
			for _, part := range s.Partitions() {
				total += part.Core().Stats.Ops
			}
			return total
		}
		_, ops := sim.Measure(e, func() {}, snapshot, so.Warmup, 4*so.Measure)
		var sizes []int
		for _, part := range s.Partitions() {
			sizes = append(sizes, part.Len())
		}
		return ops, sizes
	}
	tNo, sizesNo := run(false)
	tYes, sizesYes := run(true)
	t := &Table{
		Title:   "§4.2.1 — rebalancing under a 90%-hot workload (4 partitions)",
		Columns: []string{"rebalancing", "sim ops/s", "partition sizes"},
	}
	t.AddRow("off", tNo, fmt.Sprint(sizesNo))
	t.AddRow("on", tYes, fmt.Sprint(sizesYes))
	return []*Table{t}
}

// MigBatchExp sweeps the migration batch size and reports how long a
// fixed migration takes in virtual time.
func MigBatchExp(o Options) []*Table {
	t := &Table{
		Title:   "Ablation — migration batch size (move 512 keys between 2 partitions)",
		Columns: []string{"keys per message", "migration time", "ops served during migration"},
	}
	for _, batch := range []int{1, 2, 4, 8} {
		e := sim.NewEngine(sim.ConfigFromParams(o.Params))
		s := pimskip.New(e, 2048, 2, 5)
		s.MigBatch = batch
		var keys []int64
		for k := int64(0); k < 1024; k += 2 {
			keys = append(keys, k)
		}
		s.Preload(keys)
		g := NewGenerator(900, Uniform{N: 2048}, Balanced())
		cl := s.NewClient(g.SkipStream())
		cl.Start()
		e.RunUntil(10 * sim.Microsecond)
		start := e.Now()
		s.TriggerMigration(0, 0, 1024, 1)
		opsBefore := s.Partitions()[0].Core().Stats.Ops + s.Partitions()[1].Core().Stats.Ops
		for e.Now() < 100*sim.Millisecond {
			e.RunFor(10 * sim.Microsecond)
			if p0 := s.Partitions()[0]; p0.Len() == 0 && p0.Migrations == 1 && !p0.Owns(0) {
				break
			}
		}
		opsAfter := s.Partitions()[0].Core().Stats.Ops + s.Partitions()[1].Core().Stats.Ops
		t.AddRow(batch, (e.Now() - start).String(), opsAfter-opsBefore)
	}
	return []*Table{t}
}

// R1SweepExp shows each PIM structure's advantage over its best CPU
// baseline as r1 varies.
func R1SweepExp(o Options) []*Table {
	t := &Table{
		Title:   "Ablation — r1 sweep (PIM structure vs strongest CPU baseline)",
		Columns: []string{"r1", "list: PIM/fine-grained", "skip: PIM(k=8)/lock-free(p=16)", "queue: PIM/FC"},
	}
	for _, r1 := range []float64{1, 2, 3, 4, 6, 8} {
		params := o.Params
		params.R1 = r1
		so := o.simOpts()
		so.Params = params

		list := SimList(so, model.PIMListCombining, 8, 400).Ops /
			SimList(so, model.FineGrainedLockList, 8, 400).Ops
		pim8, _ := SimSkipPIM(so, 8, 16, 1<<14)
		skip := pim8.Ops / SimSkipLockFree(so, 16, 1<<14, false).Ops
		queue := SimPIMQueue(so, QueueRegime{Cores: 2, Threshold: 1 << 30, Pipelining: true,
			Dequeuers: 12, PrefillLong: true}).Ops / (SimQueueFC(so, 24, false).Ops / 2)
		t.AddRow(fmt.Sprintf("%.0f", r1), list, skip, queue)
	}
	return []*Table{t}
}

// QueueFatNodesExp compares plain enqueues with §5.1 fat-node
// combining on a saturated enqueue core.
func QueueFatNodesExp(o Options) []*Table {
	so := o.simOpts()
	run := func(fat bool) (float64, float64) {
		e := sim.NewEngine(sim.ConfigFromParams(o.Params))
		q := pimqueue.New(e, 2, 1<<30)
		q.FatNodes = fat
		var cls []*pimqueue.Client
		var cpus []*sim.CPU
		for i := 0; i < 12; i++ {
			cl := q.NewClient(pimqueue.Enqueuer)
			cls = append(cls, cl)
			cpus = append(cpus, cl.CPU())
		}
		start := func() {
			for _, cl := range cls {
				cl.Start()
			}
		}
		_, ops := sim.Measure(e, start, sim.OpsOfCPUs(cpus), so.Warmup, so.Measure)
		qc := q.Cores()[0]
		return ops, float64(qc.Core().Vault().Writes) / float64(qc.Enqueues)
	}
	t := &Table{
		Title:   "Ablation — §5.1 fat-node enqueue combining (12 enqueuers, one core)",
		Columns: []string{"mode", "sim ops/s", "vault writes per enqueue"},
	}
	plainOps, plainW := run(false)
	fatOps, fatW := run(true)
	t.AddRow("plain nodes", plainOps, plainW)
	t.AddRow("fat nodes (8 values/line)", fatOps, fatW)
	return []*Table{t}
}

// QueueCPUSplitExp compares the core-side threshold policy with the
// footnote-4 CPU-decided policy at a matched split cadence.
func QueueCPUSplitExp(o Options) []*Table {
	so := o.simOpts()
	run := func(cpuSplit bool) (float64, uint64) {
		e := sim.NewEngine(sim.ConfigFromParams(o.Params))
		threshold := 256
		if cpuSplit {
			threshold = 1 << 30
		}
		q := pimqueue.New(e, 4, threshold)
		var cls []*pimqueue.Client
		var cpus []*sim.CPU
		for i := 0; i < 6; i++ {
			enq := q.NewClient(pimqueue.Enqueuer)
			if cpuSplit {
				enq.SplitEvery = 256 / 6
			}
			deq := q.NewClient(pimqueue.Dequeuer)
			cls = append(cls, enq, deq)
			cpus = append(cpus, enq.CPU(), deq.CPU())
		}
		start := func() {
			for _, cl := range cls {
				cl.Start()
			}
		}
		_, ops := sim.Measure(e, start, sim.OpsOfCPUs(cpus), so.Warmup, so.Measure)
		var handoffs uint64
		for _, qc := range q.Cores() {
			handoffs += qc.Handoffs
		}
		return ops, handoffs
	}
	t := &Table{
		Title:   "Ablation — segment creation policy (footnote 4)",
		Columns: []string{"policy", "sim ops/s", "handoffs"},
	}
	coreOps, coreHand := run(false)
	cpuOps, cpuHand := run(true)
	t.AddRow("core threshold (Algorithm 1)", coreOps, coreHand)
	t.AddRow("CPU-decided (MsgSplit)", cpuOps, cpuHand)
	return []*Table{t}
}

// MigRemoteExp times one fixed migration with the message protocol and
// with direct remote-vault access at several remote latencies.
func MigRemoteExp(o Options) []*Table {
	t := &Table{
		Title:   "Ablation — migration transport (move 512 keys, batch 4)",
		Columns: []string{"transport", "migration time"},
	}
	run := func(remote bool, lremote sim.Time) sim.Time {
		cfg := sim.ConfigFromParams(o.Params)
		cfg.LpimRemote = lremote
		e := sim.NewEngine(cfg)
		s := pimskip.New(e, 2048, 2, 5)
		s.MigBatch = 4
		s.RemoteMigration = remote
		var keys []int64
		for k := int64(0); k < 1024; k += 2 {
			keys = append(keys, k)
		}
		s.Preload(keys)
		start := e.Now()
		s.TriggerMigration(0, 0, 1024, 1)
		e.Run()
		return e.Now() - start
	}
	t.AddRow("messages (MsgMigAdd)", run(false, 0).String())
	lpim := sim.ConfigFromParams(o.Params).Lpim
	for _, mult := range []sim.Time{2, 3, 6} {
		t.AddRow(fmt.Sprintf("remote access (%d×Lpim)", mult), run(true, mult*lpim).String())
	}
	return []*Table{t}
}

// HashExp measures the extension structure: the PIM-managed hash map
// against a lock-sharded CPU hash map, sweeping vault counts.
func HashExp(o Options) []*Table {
	so := o.simOpts()
	const keyN = 4096
	const p = 16
	kv := map[int64]int64{}
	for k := int64(0); k < keyN; k++ {
		kv[k] = k
	}
	genOp := func(rng *rand.Rand) pimhash.Op {
		k := rng.Int63n(keyN)
		switch rng.Intn(10) {
		case 0:
			return pimhash.Op{Kind: pimhash.MsgPut, Key: k, Val: 1}
		case 1:
			return pimhash.Op{Kind: pimhash.MsgDel, Key: k}
		default:
			return pimhash.Op{Kind: pimhash.MsgGet, Key: k}
		}
	}
	t := &Table{
		Title:   fmt.Sprintf("Extension — PIM hash map (p=%d clients, 80%% reads)", p),
		Columns: []string{"k (vaults/shards)", "PIM hash map", "sharded CPU map"},
		Note:    "the PIM map is message-latency-bound (ρ ≈ 2 probes), so it gains from pipelining exactly as §5.2 predicts",
	}
	for _, k := range []int{1, 2, 4, 8, 16} {
		e1 := sim.NewEngine(sim.ConfigFromParams(o.Params))
		m := pimhash.New(e1, k)
		m.Preload(kv)
		var clients []*sim.Client
		for i := 0; i < p; i++ {
			rng := rand.New(rand.NewSource(int64(900 + i)))
			clients = append(clients, m.NewClient(func(uint64) pimhash.Op { return genOp(rng) }))
		}
		meter := &sim.Meter{Engine: e1, Clients: clients}
		_, pimOps := meter.Run(so.Warmup, so.Measure)

		e2 := sim.NewEngine(sim.ConfigFromParams(o.Params))
		gens := make([]*rand.Rand, p)
		for i := range gens {
			gens[i] = rand.New(rand.NewSource(int64(950 + i)))
		}
		base := pimhash.NewSimShardedCPU(e2, p, k, func(cpu int, _ uint64) pimhash.Op {
			return genOp(gens[cpu])
		})
		base.Preload(kv)
		_, cpuOps := sim.Measure(e2, func() {}, base.Ops(), so.Warmup, so.Measure)

		t.AddRow(k, pimOps, cpuOps)
	}
	return []*Table{t}
}

// LatencyExp reports operation response times (p50/p95/p99) for the
// PIM structures — something the paper's throughput-only model cannot
// see — plus the profiler's critical-path attribution: what fraction
// of each request's latency was memory, message wire time, queueing,
// combiner-batch wait, or handler service. It exposes the combining
// list's latency/throughput tradeoff: the batching window adds one
// round trip of latency at low load, visible as the comb% column.
func LatencyExp(o Options) []*Table {
	so := o.simOpts()
	const keySpace = 400
	t := &Table{
		Title: "Extension — response-time percentiles and attribution (virtual time)",
		Columns: []string{"structure", "clients", "ops/s", "p50", "p95", "p99",
			"mem%", "msg%", "queue%", "comb%", "svc%"},
		Note: "attribution columns are profiler critical-path shares; the combining list trades one round trip of low-load latency (comb%) for batching throughput",
	}
	ps := func(h *stats.Histogram) (string, string, string) {
		p50, p95, p99 := h.Percentiles()
		return sim.Time(p50).String(), sim.Time(p95).String(), sim.Time(p99).String()
	}
	// shareCells renders the profiler's global attribution shares in
	// column order; atomics never appear in PIM client request paths.
	shareCells := func(pr *prof.Profiler) []interface{} {
		s := pr.Shares()
		pct := func(c string) string { return fmt.Sprintf("%.1f%%", 100*s[c]) }
		return []interface{}{pct("memory"), pct("message"), pct("queueing"), pct("combiner_wait"), pct("service")}
	}
	addRow := func(pr *prof.Profiler, cells ...interface{}) {
		t.AddRow(append(cells, shareCells(pr)...)...)
	}

	for _, cfg := range []struct {
		name      string
		combining bool
		p         int
	}{
		{"PIM list naive", false, 1},
		{"PIM list combining", true, 1},
		{"PIM list naive", false, 16},
		{"PIM list combining", true, 16},
	} {
		e := sim.NewEngine(sim.ConfigFromParams(o.Params))
		pr := prof.New(e, prof.Options{Structure: "pimlist"})
		e.SetProfiler(pr)
		l := pimlist.New(e, cfg.combining)
		l.Preload(PreloadKeys(keySpace))
		agg := stats.NewHistogram(16)
		var clients []*sim.Client
		for i := 0; i < cfg.p; i++ {
			g := NewGenerator(so.seed(int64(600+i)), Uniform{N: keySpace}, Balanced())
			cl := l.NewClient(e, g.ListStream())
			cl.Latency = agg // share one histogram across clients
			clients = append(clients, cl)
		}
		m := &sim.Meter{Engine: e, Clients: clients}
		_, ops := m.Run(so.Warmup, so.Measure)
		p50, p95, p99 := ps(agg)
		addRow(pr, cfg.name, cfg.p, ops, p50, p95, p99)
	}

	// PIM skip-list, k=8, p=16.
	{
		e := sim.NewEngine(sim.ConfigFromParams(o.Params))
		pr := prof.New(e, prof.Options{Structure: "pimskip"})
		e.SetProfiler(pr)
		s := pimskip.New(e, 1<<14, 8, 23)
		s.Preload(PreloadKeys(1 << 14))
		agg := stats.NewHistogram(16)
		var cls []*pimskip.Client
		for i := 0; i < 16; i++ {
			g := NewGenerator(so.seed(int64(650+i)), Uniform{N: 1 << 14}, Balanced())
			cl := s.NewClient(g.SkipStream())
			cl.Latency = agg
			cls = append(cls, cl)
		}
		start := func() {
			for _, cl := range cls {
				cl.Start()
			}
		}
		snapshot := func() uint64 {
			var total uint64
			for _, part := range s.Partitions() {
				total += part.Core().Stats.Ops
			}
			return total
		}
		_, ops := sim.Measure(e, start, snapshot, so.Warmup, so.Measure)
		p50, p95, p99 := ps(agg)
		addRow(pr, "PIM skip-list k=8", 16, ops, p50, p95, p99)
	}

	// PIM queue, dequeue side.
	{
		e := sim.NewEngine(sim.ConfigFromParams(o.Params))
		pr := prof.New(e, prof.Options{Structure: "pimqueue"})
		e.SetProfiler(pr)
		q := pimqueue.New(e, 2, 1<<30)
		vals := make([]int64, 1<<20)
		for i := range vals {
			vals[i] = int64(i)
		}
		q.Preload(vals)
		agg := stats.NewHistogram(16)
		var cls []*pimqueue.Client
		var cpus []*sim.CPU
		for i := 0; i < 12; i++ {
			cl := q.NewClient(pimqueue.Dequeuer)
			cl.Latency = agg
			cls = append(cls, cl)
			cpus = append(cpus, cl.CPU())
		}
		start := func() {
			for _, cl := range cls {
				cl.Start()
			}
		}
		_, ops := sim.Measure(e, start, sim.OpsOfCPUs(cpus), so.Warmup, so.Measure)
		p50, p95, p99 := ps(agg)
		addRow(pr, "PIM queue (deq side)", 12, ops, p50, p95, p99)
	}
	return []*Table{t}
}

// StackExp applies the §5 comparison to the stack: the PIM stack in
// the simulator against the modeled Treiber and FC bounds, plus the
// real host-side stacks for context.
func StackExp(o Options) []*Table {
	so := o.simOpts()

	// PIM stack, mixed pushers/poppers, saturated.
	e := sim.NewEngine(sim.ConfigFromParams(o.Params))
	st := pimstack.New(e, 2, 1<<30)
	var cls []*pimstack.Client
	var cpus []*sim.CPU
	for i := 0; i < 6; i++ {
		p := st.NewClient(pimstack.Pusher)
		q := st.NewClient(pimstack.Popper)
		cls = append(cls, p, q)
		cpus = append(cpus, p.CPU(), q.CPU())
	}
	start := func() {
		for _, cl := range cls {
			cl.Start()
		}
	}
	_, pimOps := sim.Measure(e, start, sim.OpsOfCPUs(cpus), so.Warmup, so.Measure)

	sc := model.StackConfig{P: 12}
	t := &Table{
		Title:   "Extension — stacks (the §5 method applied to the other contended structure)",
		Columns: []string{"algorithm", "bound", "model ops/s", "sim ops/s"},
		Note:    "the stack has one hot end, so the PIM stack always runs single-segment; it still beats both CPU bounds",
	}
	rows := model.StackTable(o.Params, sc)
	t.AddRow(rows[0].Algorithm, rows[0].Formula, rows[0].OpsPerSec, "—")
	t.AddRow(rows[1].Algorithm, rows[1].Formula, rows[1].OpsPerSec, "—")
	t.AddRow(rows[2].Algorithm, rows[2].Formula, rows[2].OpsPerSec, pimOps)

	// Host-side stacks for context.
	measure := o.hostMeasure()
	warmup := measure / 5
	host := &Table{
		Title:   "Extension — stack host baselines (mixed push/pop, prefilled)",
		Columns: []string{"threads", "Treiber", "FC stack", "FC stack + elimination"},
	}
	for _, p := range o.hostSweep() {
		tr := func() float64 {
			s := treiberstack.New()
			for i := int64(0); i < 1<<15; i++ {
				s.Push(i)
			}
			return HostThroughput(p, warmup, measure, func(tid int, rng *rand.Rand) func() {
				push := tid%2 == 0
				return func() {
					if push {
						s.Push(1)
					} else {
						s.Pop()
					}
				}
			})
		}()
		fcAt := func(eliminate bool) float64 {
			s := fcstack.New(eliminate)
			h := s.NewHandle()
			for i := int64(0); i < 1<<15; i++ {
				h.Push(i)
			}
			return HostThroughput(p, warmup, measure, func(tid int, rng *rand.Rand) func() {
				handle := s.NewHandle()
				push := tid%2 == 0
				return func() {
					if push {
						handle.Push(1)
					} else {
						handle.Pop()
					}
				}
			})
		}
		host.AddRow(p, tr, fcAt(false), fcAt(true))
	}
	return []*Table{t, host}
}

// ListSizesExp sweeps the list size n: the PIM-combining advantage
// over fine-grained locks is size-independent (both scale as 1/n), as
// the Table 1 algebra predicts — the ratio is r1·(n+1)/(2(n−Sp)) ≈ 1.5.
func ListSizesExp(o Options) []*Table {
	so := o.simOpts()
	t := &Table{
		Title:   "§4.1 — list-size sweep (p = 8)",
		Columns: []string{"n (nodes)", "fine-grained locks", "PIM+combining", "ratio", "model ratio"},
	}
	for _, keySpace := range []int64{100, 400, 1600, 6400} {
		n := int(keySpace / 2)
		fgl := SimList(so, model.FineGrainedLockList, 8, keySpace).Ops
		pim := SimList(so, model.PIMListCombining, 8, keySpace).Ops
		lc := model.ListConfig{N: n, P: 8}
		modelRatio := model.ListPIMCombining(o.Params, lc) / model.ListFineGrainedLocks(o.Params, lc)
		t.AddRow(n, fgl, pim, pim/fgl, modelRatio)
	}
	return []*Table{t}
}

// SkipCombiningExp quantifies the §4.2 claim that the combining
// optimization "cannot be applied to skip-lists effectively": it
// measures the traversal steps saved by batching p requests into one
// pass for a linked-list versus a skip-list of equal size (the
// skip-list batch uses a finger search — the strongest sequential
// combining one can do). Lists share almost the whole traversal;
// skip-list paths share only a short prefix.
func SkipCombiningExp(o Options) []*Table {
	const size = 1 << 13
	t := &Table{
		Title:   "§4.2 — traversal steps saved by combining a batch (structure size 8192)",
		Columns: []string{"batch size", "list serial", "list batched", "list saving", "skip serial", "skip batched", "skip saving"},
		Note:    "the list's saving approaches (p-1)/p; the skip-list's stays small — why §4.2 partitions instead",
	}
	for _, p := range []int{2, 4, 8, 16, 32} {
		rng := rand.New(rand.NewSource(int64(p)))
		listOps := make([]seqlist.Op, p)
		skipOps := make([]seqskip.Op, p)
		for i := 0; i < p; i++ {
			k := rng.Int63n(size)
			listOps[i] = seqlist.Op{Kind: seqlist.Contains, Key: k}
			skipOps[i] = seqskip.Op{Kind: seqskip.Contains, Key: k}
		}

		buildList := func() *seqlist.List {
			l := seqlist.New()
			for k := int64(0); k < size; k++ {
				l.AddKey(k)
			}
			return l
		}
		ls := buildList()
		ls.ResetSteps()
		for _, op := range listOps {
			ls.Apply(op)
		}
		lb := buildList()
		lb.ResetSteps()
		lb.ApplyBatch(listOps)

		buildSkip := func() *seqskip.List {
			l := seqskip.New(5)
			for k := int64(0); k < size; k++ {
				l.AddKey(k)
			}
			return l
		}
		ss := buildSkip()
		ss.ResetSteps()
		for _, op := range skipOps {
			ss.Apply(op)
		}
		sb := buildSkip()
		sb.ResetSteps()
		sb.ApplyBatch(skipOps)

		pct := func(serial, batched uint64) string {
			return fmt.Sprintf("%.0f%%", (1-float64(batched)/float64(serial))*100)
		}
		t.AddRow(p, ls.Steps(), lb.Steps(), pct(ls.Steps(), lb.Steps()),
			ss.Steps(), sb.Steps(), pct(ss.Steps(), sb.Steps()))
	}
	return []*Table{t}
}

// QueueSlowCPUExp injects one slow client (delayed acknowledgements)
// and measures both notification schemes under frequent handoffs — the
// paper's stated reason the non-blocking scheme exists.
func QueueSlowCPUExp(o Options) []*Table {
	so := o.simOpts()
	run := func(blocking bool, ackDelay sim.Time) float64 {
		e := sim.NewEngine(sim.ConfigFromParams(o.Params))
		q := pimqueue.New(e, 4, 64) // frequent handoffs
		q.BlockingNotify = blocking
		var enqs, deqs []*pimqueue.Client
		var cpus []*sim.CPU
		for i := 0; i < 6; i++ {
			enq := q.NewClient(pimqueue.Enqueuer)
			deq := q.NewClient(pimqueue.Dequeuer)
			enqs = append(enqs, enq)
			deqs = append(deqs, deq)
			cpus = append(cpus, enq.CPU(), deq.CPU())
		}
		enqs[0].AckDelay = ackDelay // one slow CPU
		// Stagger consumers so a backlog builds and segments hand off
		// continuously during the measurement.
		start := func() {
			for _, cl := range enqs {
				cl.Start()
			}
			e.After(100*sim.Microsecond, func() {
				for _, cl := range deqs {
					cl.Start()
				}
			})
		}
		_, ops := sim.Measure(e, start, sim.OpsOfCPUs(cpus), so.Warmup, so.Measure)
		return ops
	}
	t := &Table{
		Title:   "Failure injection — one slow CPU (delayed acks), threshold 64, 6+6 clients",
		Columns: []string{"scheme", "no slow CPU", "slow CPU (10µs acks)"},
		Note:    "the blocking scheme stalls every handoff on the slow CPU; the non-blocking scheme is unaffected (§5.1)",
	}
	t.AddRow("non-blocking", run(false, 0), run(false, 10*sim.Microsecond))
	t.AddRow("blocking", run(true, 0), run(true, 10*sim.Microsecond))
	return []*Table{t}
}

// QueueScalingExp sweeps client count per side: the PIM queue and both
// baselines approach their §5.2 saturation bounds from below.
func QueueScalingExp(o Options) []*Table {
	so := o.simOpts()
	t := &Table{
		Title:   "§5.2 — queue throughput vs clients per side",
		Columns: []string{"clients/side", "PIM queue (deq side)", "FC bound/side", "F&A bound/side"},
		Note:    "saturation: PIM → 1/Lpim, FC → 1/(2·Lllc), F&A → 1/Latomic",
	}
	faa := SimQueueFAA(so, 1, false).Ops // one line: serialized at Latomic for any p
	for _, p := range []int{1, 2, 4, 8, 16, 24} {
		pim := SimPIMQueue(so, QueueRegime{Cores: 2, Threshold: 1 << 30, Pipelining: true,
			Dequeuers: p, PrefillLong: true}).Ops
		fc := SimQueueFC(so, 2*p, false).Ops / 2
		t.AddRow(p, pim, fc, faa)
	}
	return []*Table{t}
}

// BandwidthExp sweeps the per-sender message-injection gap to test the
// paper's §5.2 claim that reply bandwidth does not bottleneck the
// pipelined PIM queue: throughput should hold at 1/Lpim until the gap
// exceeds Lpim, then track 1/gap.
func BandwidthExp(o Options) []*Table {
	so := o.simOpts()
	lpim := sim.ConfigFromParams(o.Params).Lpim
	t := &Table{
		Title:   "Ablation — reply-link injection bandwidth (PIM queue, dequeue side, 12 clients)",
		Columns: []string{"injection gap", "sim ops/s", "regime"},
		Note:    "flat until gap > Lpim: the paper's bandwidth claim, quantified",
	}
	for _, mult := range []float64{0, 0.5, 1, 2, 4} {
		gap := sim.Time(float64(lpim) * mult)
		cfg := sim.ConfigFromParams(o.Params)
		cfg.MessageGap = gap
		e := sim.NewEngine(cfg)
		q := pimqueue.New(e, 2, 1<<30)
		vals := make([]int64, 1<<20)
		for i := range vals {
			vals[i] = int64(i)
		}
		q.Preload(vals)
		var cls []*pimqueue.Client
		var cpus []*sim.CPU
		for i := 0; i < 12; i++ {
			cl := q.NewClient(pimqueue.Dequeuer)
			cls = append(cls, cl)
			cpus = append(cpus, cl.CPU())
		}
		start := func() {
			for _, cl := range cls {
				cl.Start()
			}
		}
		_, ops := sim.Measure(e, start, sim.OpsOfCPUs(cpus), so.Warmup, so.Measure)
		regime := "service-bound (≈1/Lpim)"
		if gap > lpim {
			regime = "bandwidth-bound (≈1/gap)"
		}
		t.AddRow(fmt.Sprintf("%.1f×Lpim", mult), ops, regime)
	}
	return []*Table{t}
}

func ratioNear(a, b, tol float64) bool {
	if b == 0 {
		return false
	}
	r := a / b
	return r >= 1-tol && r <= 1+tol
}
