package harness

import (
	"math/rand"
	"testing"
)

func TestParseKeyDist(t *testing.T) {
	const space = 1 << 10
	cases := []struct {
		spec string
		want string
		ok   bool
	}{
		{"uniform", "uniform[0,1024)", true},
		{"", "uniform[0,1024)", true},
		{"zipf", "zipf(s=1.20)[0,1024)", true},
		{"zipf:1.5", "zipf(s=1.50)[0,1024)", true},
		{"hot", "hot[90%→10% of 1024]", true},
		{"hot:80/20", "hot[80%→20% of 1024]", true},
		{"zipf:1.0", "", false}, // skew must be > 1
		{"zipf:x", "", false},
		{"hot:120/10", "", false},
		{"hot:90/0", "", false},
		{"hot:banana", "", false},
		{"pareto", "", false},
	}
	for _, c := range cases {
		kd, err := ParseKeyDist(c.spec, space)
		if c.ok != (err == nil) {
			t.Errorf("ParseKeyDist(%q): err=%v, want ok=%v", c.spec, err, c.ok)
			continue
		}
		if c.ok && kd.Name() != c.want {
			t.Errorf("ParseKeyDist(%q) = %s, want %s", c.spec, kd.Name(), c.want)
		}
	}
	if _, err := ParseKeyDist("uniform", 1); err == nil {
		t.Error("ParseKeyDist accepted a degenerate key space")
	}
}

func TestParsedDistsAreDeterministic(t *testing.T) {
	const space = 1 << 12
	for _, spec := range []string{"uniform", "zipf:1.3", "hot:90/10"} {
		draw := func() []int64 {
			kd, err := ParseKeyDist(spec, space)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(42))
			keys := make([]int64, 200)
			for i := range keys {
				keys[i] = kd.Next(rng)
				if keys[i] < 0 || keys[i] >= space {
					t.Fatalf("%s: key %d outside [0,%d)", spec, keys[i], space)
				}
			}
			return keys
		}
		a, b := draw(), draw()
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: key stream diverged at %d (%d vs %d) for the same seed", spec, i, a[i], b[i])
				break
			}
		}
	}
}

func TestZipfIsSkewed(t *testing.T) {
	const space = 1 << 12
	kd, err := ParseKeyDist("zipf:1.2", space)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const n = 20000
	low := 0
	for i := 0; i < n; i++ {
		if kd.Next(rng) < space/10 {
			low++
		}
	}
	// Uniform would put ~10% in the bottom decile; zipf(1.2) puts the
	// overwhelming majority there.
	if frac := float64(low) / n; frac < 0.5 {
		t.Errorf("zipf bottom-decile mass %.2f, want ≥ 0.5 (uniform would be 0.10)", frac)
	}
}
