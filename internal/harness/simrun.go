package harness

import (
	"math/rand"

	"pimds/internal/cds/seqlist"
	"pimds/internal/cds/seqskip"
	"pimds/internal/core/pimlist"
	"pimds/internal/core/pimqueue"
	"pimds/internal/core/pimskip"
	"pimds/internal/model"
	"pimds/internal/sim"
	"pimds/internal/stats"
)

// SimOpts configures one virtual-time measurement.
type SimOpts struct {
	Params  model.Params
	Warmup  sim.Time
	Measure sim.Time

	// Seed perturbs every workload generator in the run. Identical
	// (Seed, opts) always produce bit-identical virtual-time results —
	// the simulator is a deterministic discrete-event machine and the
	// generators are seeded PRNGs. Seed 0 reproduces the legacy
	// (pre-Seed) streams exactly.
	Seed int64
}

// seed derives a generator seed from a call-site-specific base, folding
// in the run's Seed. With Seed == 0 it returns base unchanged, keeping
// historical outputs stable.
func (o SimOpts) seed(base int64) int64 {
	return base + o.Seed*1_000_003
}

// DefaultSimOpts returns the standard measurement windows at the
// paper's parameters.
func DefaultSimOpts() SimOpts {
	return SimOpts{
		Params:  model.DefaultParams(),
		Warmup:  500 * sim.Microsecond,
		Measure: 5 * sim.Millisecond,
	}
}

// quickened shrinks the windows for -quick runs.
func (o SimOpts) quickened() SimOpts {
	o.Warmup /= 5
	o.Measure /= 5
	return o
}

// RunResult is the outcome of one virtual-time measurement: completed
// operations in the window, throughput, and (for variants driven by
// message clients) the per-operation inject→reply latency histogram.
// Latency is nil for the loop-based CPU baselines, which complete
// operations without request/response traffic.
type RunResult struct {
	Completed uint64
	Ops       float64
	Latency   *stats.Histogram
}

// Percentiles renders the latency histogram's p50/p95/p99 as
// virtual-time strings, or em-dashes when no latency was recorded.
func (r RunResult) Percentiles() (p50, p95, p99 string) {
	if r.Latency == nil || r.Latency.N() == 0 {
		return "—", "—", "—"
	}
	a, b, c := r.Latency.Percentiles()
	return sim.Time(a).String(), sim.Time(b).String(), sim.Time(c).String()
}

// SimList measures one Table 1 row in virtual time: variant selects
// the algorithm. p CPU threads, uniform keys over keySpace, balanced
// add/remove, initial occupancy 1/2.
func SimList(o SimOpts, variant model.ListAlgorithm, p int, keySpace int64) RunResult {
	cfg := sim.ConfigFromParams(o.Params)
	e := sim.NewEngine(cfg)
	keys := PreloadKeys(keySpace)
	dist := Uniform{N: keySpace}

	switch variant {
	case model.PIMListNoCombining, model.PIMListCombining:
		l := pimlist.New(e, variant == model.PIMListCombining)
		l.Preload(keys)
		agg := stats.NewHistogram(16)
		var clients []*sim.Client
		for i := 0; i < p; i++ {
			g := NewGenerator(o.seed(int64(1000+i)), dist, Balanced())
			cl := l.NewClient(e, g.ListStream())
			cl.Latency = agg // one histogram across clients
			clients = append(clients, cl)
		}
		m := &sim.Meter{Engine: e, Clients: clients}
		completed, ops := m.Run(o.Warmup, o.Measure)
		return RunResult{Completed: completed, Ops: ops, Latency: agg}

	case model.FineGrainedLockList:
		gens := make([]*Generator, p)
		for i := range gens {
			gens[i] = NewGenerator(o.seed(int64(2000+i)), dist, Balanced())
		}
		s := pimlist.NewSimFineGrained(e, p, func(cpu int, _ uint64) (op listOp) {
			return gens[cpu].Next().ToList()
		})
		s.Preload(keys)
		completed, ops := sim.Measure(e, func() {}, s.Ops(), o.Warmup, o.Measure)
		return RunResult{Completed: completed, Ops: ops}

	case model.FCListNoCombining, model.FCListCombining:
		g := NewGenerator(o.seed(3000), dist, Balanced())
		s := pimlist.NewSimFCList(e, p, variant == model.FCListCombining, func(uint64) listOp {
			return g.Next().ToList()
		})
		s.Preload(keys)
		completed, ops := sim.Measure(e, func() {}, s.Ops(), o.Warmup, o.Measure)
		return RunResult{Completed: completed, Ops: ops}
	}
	return RunResult{}
}

// listOp aliases the sequential-list op type to keep signatures short.
type listOp = seqlist.Op

// SimSkipPIM measures the PIM skip-list with k partitions; it returns
// the measurement and the measured average traversal length β (vault
// reads per operation), which feeds the model cross-check.
func SimSkipPIM(o SimOpts, k, p int, keySpace int64) (res RunResult, beta float64) {
	e := sim.NewEngine(sim.ConfigFromParams(o.Params))
	s := pimskip.New(e, keySpace, k, 23)
	s.Preload(PreloadKeys(keySpace))
	agg := stats.NewHistogram(16)
	for i := 0; i < p; i++ {
		g := NewGenerator(o.seed(int64(90+i)), Uniform{N: keySpace}, Balanced())
		cl := s.NewClient(g.SkipStream())
		cl.Latency = agg
		cl.Start()
	}
	snapshot := func() uint64 {
		var total uint64
		for _, part := range s.Partitions() {
			total += part.Core().Stats.Ops
		}
		return total
	}
	completed, ops := sim.Measure(e, func() {}, snapshot, o.Warmup, o.Measure)
	res = RunResult{Completed: completed, Ops: ops, Latency: agg}
	var reads, opsN uint64
	for _, part := range s.Partitions() {
		reads += part.Core().Vault().Reads
		opsN += part.Core().Stats.Ops
	}
	if opsN == 0 {
		return res, 0
	}
	return res, float64(reads) / float64(opsN)
}

// SimSkipLockFree measures the simulated lock-free skip-list baseline.
func SimSkipLockFree(o SimOpts, p int, keySpace int64, chargeCAS bool) RunResult {
	e := sim.NewEngine(sim.ConfigFromParams(o.Params))
	gens := make([]*Generator, p)
	for i := range gens {
		gens[i] = NewGenerator(o.seed(int64(400+i)), Uniform{N: keySpace}, Balanced())
	}
	s := pimskip.NewSimLockFree(e, p, chargeCAS, func(cpu int, _ uint64) skipOp {
		return gens[cpu].Next().ToSkip()
	})
	s.Preload(PreloadKeys(keySpace))
	completed, ops := sim.Measure(e, func() {}, s.Ops(), o.Warmup, o.Measure)
	return RunResult{Completed: completed, Ops: ops}
}

// skipOp aliases the sequential-skip-list op type.
type skipOp = seqskip.Op

// SimSkipFC measures the simulated partitioned flat-combining
// skip-list baseline.
func SimSkipFC(o SimOpts, k, p int, keySpace int64) RunResult {
	e := sim.NewEngine(sim.ConfigFromParams(o.Params))
	gens := make([]*Generator, k)
	for i := range gens {
		lo := int64(i) * keySpace / int64(k)
		hi := int64(i+1) * keySpace / int64(k)
		gens[i] = NewGenerator(o.seed(int64(300+i)), rangeDist{lo: lo, hi: hi}, Balanced())
	}
	s := pimskip.NewSimFCSkip(e, keySpace, k, p, func(part int, _ uint64) skipOp {
		return gens[part].Next().ToSkip()
	})
	for i := 0; i < k; i++ {
		lo := int64(i) * keySpace / int64(k)
		hi := int64(i+1) * keySpace / int64(k)
		var keys []int64
		for j := lo; j < hi; j += 2 {
			keys = append(keys, j)
		}
		s.PreloadPartition(i, keys)
	}
	completed, ops := sim.Measure(e, func() {}, s.Ops(), o.Warmup, o.Measure)
	return RunResult{Completed: completed, Ops: ops}
}

// rangeDist draws uniformly from [lo, hi).
type rangeDist struct{ lo, hi int64 }

// Next returns a key in [lo, hi).
func (r rangeDist) Next(rng *rand.Rand) int64 {
	return r.lo + rng.Int63n(r.hi-r.lo)
}

// Space returns the exclusive bound.
func (r rangeDist) Space() int64 { return r.hi }

// Name describes the distribution.
func (r rangeDist) Name() string { return "range" }

// QueueRegime selects the PIM-queue measurement scenario.
type QueueRegime struct {
	Cores          int
	Threshold      int
	Pipelining     bool
	BlockingNotify bool
	Enqueuers      int
	Dequeuers      int
	PrefillLong    bool // prefill ~1M values and separate the two ends
}

// SimPIMQueue measures the PIM queue under the given regime.
func SimPIMQueue(o SimOpts, r QueueRegime) RunResult {
	e := sim.NewEngine(sim.ConfigFromParams(o.Params))
	q := pimqueue.New(e, r.Cores, r.Threshold)
	q.Pipelining = r.Pipelining
	q.BlockingNotify = r.BlockingNotify
	if r.PrefillLong {
		vals := make([]int64, 1<<20)
		for i := range vals {
			vals[i] = int64(i)
		}
		q.Preload(vals)
	}
	agg := stats.NewHistogram(16)
	var cpus []*sim.CPU
	var clients []*pimqueue.Client
	for i := 0; i < r.Enqueuers; i++ {
		cl := q.NewClient(pimqueue.Enqueuer)
		cl.Latency = agg
		clients = append(clients, cl)
		cpus = append(cpus, cl.CPU())
	}
	for i := 0; i < r.Dequeuers; i++ {
		cl := q.NewClient(pimqueue.Dequeuer)
		cl.Latency = agg
		clients = append(clients, cl)
		cpus = append(cpus, cl.CPU())
	}
	start := func() {
		for _, cl := range clients {
			cl.Start()
		}
	}
	completed, ops := sim.Measure(e, start, sim.OpsOfCPUs(cpus), o.Warmup, o.Measure)
	return RunResult{Completed: completed, Ops: ops, Latency: agg}
}

// SimQueueFAA measures the simulated F&A queue baseline (per side:
// pass the number of threads on one side).
func SimQueueFAA(o SimOpts, p int, chargeMemory bool) RunResult {
	e := sim.NewEngine(sim.ConfigFromParams(o.Params))
	s := pimqueue.NewSimFAAQueue(e, p, chargeMemory)
	completed, ops := sim.Measure(e, func() {}, s.Ops(), o.Warmup, o.Measure)
	return RunResult{Completed: completed, Ops: ops}
}

// SimQueueFC measures the simulated flat-combining queue baseline
// (both sides; divide Ops by 2 for per-side numbers).
func SimQueueFC(o SimOpts, p int, chargeMemory bool) RunResult {
	e := sim.NewEngine(sim.ConfigFromParams(o.Params))
	s := pimqueue.NewSimFCQueue(e, p, chargeMemory)
	completed, ops := sim.Measure(e, func() {}, s.Ops(), o.Warmup, o.Measure)
	return RunResult{Completed: completed, Ops: ops}
}
