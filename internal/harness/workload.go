// Package harness provides the workload generators, measurement loops
// and table formatting shared by the benchmark executables
// (cmd/pimbench, cmd/pimsim, cmd/pimmodel), the root-level Go
// benchmarks, and the examples. Each experiment of DESIGN.md §3 is a
// function in this package returning a formatted table.
package harness

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"pimds/internal/cds/seqlist"
	"pimds/internal/cds/seqskip"
)

// OpKind is a set-operation kind, shared across structures.
type OpKind uint8

// The three set operations.
const (
	Contains OpKind = iota
	Add
	Remove
)

// Op is a structure-agnostic set operation.
type Op struct {
	Kind OpKind
	Key  int64
}

// ToList converts to the sequential-list op type.
func (o Op) ToList() seqlist.Op {
	return seqlist.Op{Kind: seqlist.OpKind(o.Kind), Key: o.Key}
}

// ToSkip converts to the sequential-skip-list op type.
func (o Op) ToSkip() seqskip.Op {
	return seqskip.Op{Kind: seqskip.OpKind(o.Kind), Key: o.Key}
}

// Mix is an operation mix in percent; the three fields must sum to 100.
type Mix struct {
	ContainsPct int
	AddPct      int
	RemovePct   int
}

// Validate checks the mix sums to 100.
func (m Mix) Validate() error {
	if m.ContainsPct+m.AddPct+m.RemovePct != 100 {
		return fmt.Errorf("harness: mix %+v does not sum to 100", m)
	}
	return nil
}

// Balanced is the paper's size-stable update-only mix (equal adds and
// removes).
func Balanced() Mix { return Mix{AddPct: 50, RemovePct: 50} }

// ReadMostly is a typical search-dominated mix.
func ReadMostly() Mix { return Mix{ContainsPct: 90, AddPct: 5, RemovePct: 5} }

// KeyDist generates keys.
type KeyDist interface {
	// Next returns the next key using rng.
	Next(rng *rand.Rand) int64
	// Space returns the exclusive key-space bound.
	Space() int64
	// Name describes the distribution.
	Name() string
}

// Uniform draws keys uniformly from [0, N).
type Uniform struct{ N int64 }

// Next returns a uniform key.
func (u Uniform) Next(rng *rand.Rand) int64 { return rng.Int63n(u.N) }

// Space returns N.
func (u Uniform) Space() int64 { return u.N }

// Name describes the distribution.
func (u Uniform) Name() string { return fmt.Sprintf("uniform[0,%d)", u.N) }

// HotRange sends HotPct percent of keys into the first FracPct percent
// of the key space — the skewed workload used by the rebalancing
// experiment (§4.2.1).
type HotRange struct {
	N       int64
	HotPct  int // share of requests hitting the hot range
	FracPct int // size of the hot range as a share of the space
}

// Next returns a skewed key.
func (h HotRange) Next(rng *rand.Rand) int64 {
	hot := h.N * int64(h.FracPct) / 100
	if hot < 1 {
		hot = 1
	}
	if rng.Intn(100) < h.HotPct {
		return rng.Int63n(hot)
	}
	if h.N == hot {
		return rng.Int63n(h.N)
	}
	return hot + rng.Int63n(h.N-hot)
}

// Space returns N.
func (h HotRange) Space() int64 { return h.N }

// Name describes the distribution.
func (h HotRange) Name() string {
	return fmt.Sprintf("hot[%d%%→%d%% of %d]", h.HotPct, h.FracPct, h.N)
}

// Zipf draws keys Zipf-distributed over [0, N).
type Zipf struct {
	N int64
	S float64 // skew exponent (> 1)
}

// Next returns a Zipf key. The interface is stateless, so this path
// recreates the rand.Zipf source from the rng each call; Generator
// recognizes the Zipf distribution and caches the source instead
// (rand.NewZipf draws nothing at construction, so both paths produce
// the same key stream from the same rng).
func (z Zipf) Next(rng *rand.Rand) int64 {
	zf := rand.NewZipf(rng, z.S, 1, uint64(z.N-1))
	return int64(zf.Uint64())
}

// source builds the cached form bound to rng.
func (z Zipf) source(rng *rand.Rand) *rand.Zipf {
	return rand.NewZipf(rng, z.S, 1, uint64(z.N-1))
}

// Space returns N.
func (z Zipf) Space() int64 { return z.N }

// Name describes the distribution.
func (z Zipf) Name() string { return fmt.Sprintf("zipf(s=%.2f)[0,%d)", z.S, z.N) }

// ParseKeyDist parses a key-distribution spec shared by the pimbench
// -dist and pimload -dist flags:
//
//	uniform          uniform over [0, space)
//	zipf             Zipf with the default skew s=1.2
//	zipf:S           Zipf with skew exponent S (> 1)
//	hot:H/F          H% of keys in the first F% of the space
//
// Every distribution is seeded through the generator's rng, so the
// same (seed, spec) pair reproduces the same key stream.
func ParseKeyDist(spec string, space int64) (KeyDist, error) {
	if space < 2 {
		return nil, fmt.Errorf("harness: key space %d too small", space)
	}
	name, arg, _ := strings.Cut(spec, ":")
	switch name {
	case "", "uniform":
		return Uniform{N: space}, nil
	case "zipf":
		s := 1.2
		if arg != "" {
			var err error
			if s, err = strconv.ParseFloat(arg, 64); err != nil {
				return nil, fmt.Errorf("harness: bad zipf skew %q: %v", arg, err)
			}
		}
		if s <= 1 {
			return nil, fmt.Errorf("harness: zipf skew must be > 1, got %g", s)
		}
		return Zipf{N: space, S: s}, nil
	case "hot":
		hot, frac := 90, 10
		if arg != "" {
			if _, err := fmt.Sscanf(arg, "%d/%d", &hot, &frac); err != nil {
				return nil, fmt.Errorf("harness: bad hot spec %q (want H/F, e.g. hot:90/10): %v", arg, err)
			}
		}
		if hot < 0 || hot > 100 || frac < 1 || frac > 100 {
			return nil, fmt.Errorf("harness: hot spec %d/%d out of range", hot, frac)
		}
		return HotRange{N: space, HotPct: hot, FracPct: frac}, nil
	}
	return nil, fmt.Errorf("harness: unknown key distribution %q (want uniform, zipf[:S] or hot[:H/F])", spec)
}

// Generator produces a deterministic operation stream.
type Generator struct {
	rng  *rand.Rand
	dist KeyDist
	mix  Mix
	zipf *rand.Zipf // cached Zipf source; nil for other distributions
}

// NewGenerator builds a generator; the same seed yields the same
// stream. A Zipf distribution's source is built once here — Zipf.Next
// would otherwise reconstruct it (and its internal state) on every
// draw, allocating in the load generator's inner loop.
func NewGenerator(seed int64, dist KeyDist, mix Mix) *Generator {
	if err := mix.Validate(); err != nil {
		panic(err)
	}
	g := &Generator{rng: rand.New(rand.NewSource(seed)), dist: dist, mix: mix}
	if z, ok := dist.(Zipf); ok {
		g.zipf = z.source(g.rng)
	}
	return g
}

// Next returns the next operation. This is the injector's per-op cost
// on every load path, so it stays allocation-free; the uncached
// distributions draw through the KeyDist interface, whose module
// implementations are pure arithmetic over the rng.
//
//pimvet:allocfree //pimvet:nonblocking
func (g *Generator) Next() Op {
	var k int64
	if g.zipf != nil {
		k = int64(g.zipf.Uint64())
	} else {
		k = g.dist.Next(g.rng)
	}
	r := g.rng.Intn(100)
	switch {
	case r < g.mix.ContainsPct:
		return Op{Kind: Contains, Key: k}
	case r < g.mix.ContainsPct+g.mix.AddPct:
		return Op{Kind: Add, Key: k}
	default:
		return Op{Kind: Remove, Key: k}
	}
}

// ListStream adapts the generator to the signature pimlist clients use.
func (g *Generator) ListStream() func(seq uint64) seqlist.Op {
	return func(uint64) seqlist.Op { return g.Next().ToList() }
}

// SkipStream adapts the generator to the signature pimskip clients use.
func (g *Generator) SkipStream() func(seq uint64) seqskip.Op {
	return func(uint64) seqskip.Op { return g.Next().ToSkip() }
}

// PreloadKeys returns every other key of [0, space) — the standard
// half-full initial population whose steady state matches a balanced
// add/remove mix.
func PreloadKeys(space int64) []int64 {
	keys := make([]int64, 0, space/2)
	for k := int64(0); k < space; k += 2 {
		keys = append(keys, k)
	}
	return keys
}
