// Package harness provides the workload generators, measurement loops
// and table formatting shared by the benchmark executables
// (cmd/pimbench, cmd/pimsim, cmd/pimmodel), the root-level Go
// benchmarks, and the examples. Each experiment of DESIGN.md §3 is a
// function in this package returning a formatted table.
package harness

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"pimds/internal/cds/seqlist"
	"pimds/internal/cds/seqskip"
)

// OpKind is a set-operation kind, shared across structures.
type OpKind uint8

// The three set operations, plus the ordered operations the sorted
// structures serve. The values mirror seqlist's enum so the ToList
// conversion stays a cast.
const (
	Contains OpKind = iota
	Add
	Remove
	Scan
	Pred
	Succ
	PopMin
	PopMax
)

// Op is a structure-agnostic set operation. Hi and Limit are a scan's
// exclusive upper bound and result cap; other kinds leave them zero.
type Op struct {
	Kind  OpKind
	Key   int64
	Hi    int64
	Limit uint16
}

// ToList converts to the sequential-list op type.
func (o Op) ToList() seqlist.Op {
	return seqlist.Op{Kind: seqlist.OpKind(o.Kind), Key: o.Key, Hi: o.Hi, Limit: int(o.Limit)}
}

// ToSkip converts to the sequential-skip-list op type (point kinds
// only; seqskip serves the ordered kinds through dedicated methods).
func (o Op) ToSkip() seqskip.Op {
	return seqskip.Op{Kind: seqskip.OpKind(o.Kind), Key: o.Key}
}

// Mix is an operation mix in percent; all fields together must sum to
// 100. The ordered percentages matter only to workloads whose target
// serves the ordered surface (the network server's list/skip
// structures); the in-process structure benchmarks use the point trio.
type Mix struct {
	ContainsPct int
	AddPct      int
	RemovePct   int

	ScanPct   int
	PredPct   int
	SuccPct   int
	PopMinPct int
	PopMaxPct int
}

// OrderedPct is the share of ordered operations in the mix.
func (m Mix) OrderedPct() int {
	return m.ScanPct + m.PredPct + m.SuccPct + m.PopMinPct + m.PopMaxPct
}

// Validate checks the mix sums to 100 with no negative share.
func (m Mix) Validate() error {
	for _, pct := range []int{m.ContainsPct, m.AddPct, m.RemovePct, m.ScanPct, m.PredPct, m.SuccPct, m.PopMinPct, m.PopMaxPct} {
		if pct < 0 {
			return fmt.Errorf("harness: mix %+v has a negative share", m)
		}
	}
	if m.ContainsPct+m.AddPct+m.RemovePct+m.OrderedPct() != 100 {
		return fmt.Errorf("harness: mix %+v does not sum to 100", m)
	}
	return nil
}

// ParseMix parses the mix spec shared by the pimbench and pimload -mix
// flags: the point trio "contains/add/remove", optionally followed by
// named ordered shares, all summing to 100. Examples:
//
//	90/5/5
//	25/30/30,scan:10,popmin:5
//	0/45/45,scan:10
func ParseMix(spec string) (Mix, error) {
	parts := strings.Split(spec, ",")
	var m Mix
	if _, err := fmt.Sscanf(parts[0], "%d/%d/%d", &m.ContainsPct, &m.AddPct, &m.RemovePct); err != nil {
		return Mix{}, fmt.Errorf("harness: bad mix %q (want C/A/R[,kind:pct...], e.g. 25/30/30,scan:10,popmin:5)", spec)
	}
	for _, p := range parts[1:] {
		name, val, ok := strings.Cut(p, ":")
		var pct int
		if ok {
			var err error
			pct, err = strconv.Atoi(val)
			ok = err == nil
		}
		if !ok {
			return Mix{}, fmt.Errorf("harness: bad mix term %q (want kind:pct)", p)
		}
		switch name {
		case "scan":
			m.ScanPct = pct
		case "pred":
			m.PredPct = pct
		case "succ":
			m.SuccPct = pct
		case "popmin":
			m.PopMinPct = pct
		case "popmax":
			m.PopMaxPct = pct
		default:
			return Mix{}, fmt.Errorf("harness: unknown mix kind %q (want scan|pred|succ|popmin|popmax)", name)
		}
	}
	if err := m.Validate(); err != nil {
		return Mix{}, err
	}
	return m, nil
}

// Balanced is the paper's size-stable update-only mix (equal adds and
// removes).
func Balanced() Mix { return Mix{AddPct: 50, RemovePct: 50} }

// ReadMostly is a typical search-dominated mix.
func ReadMostly() Mix { return Mix{ContainsPct: 90, AddPct: 5, RemovePct: 5} }

// KeyDist generates keys.
type KeyDist interface {
	// Next returns the next key using rng.
	Next(rng *rand.Rand) int64
	// Space returns the exclusive key-space bound.
	Space() int64
	// Name describes the distribution.
	Name() string
}

// Uniform draws keys uniformly from [0, N).
type Uniform struct{ N int64 }

// Next returns a uniform key.
func (u Uniform) Next(rng *rand.Rand) int64 { return rng.Int63n(u.N) }

// Space returns N.
func (u Uniform) Space() int64 { return u.N }

// Name describes the distribution.
func (u Uniform) Name() string { return fmt.Sprintf("uniform[0,%d)", u.N) }

// HotRange sends HotPct percent of keys into the first FracPct percent
// of the key space — the skewed workload used by the rebalancing
// experiment (§4.2.1).
type HotRange struct {
	N       int64
	HotPct  int // share of requests hitting the hot range
	FracPct int // size of the hot range as a share of the space
}

// Next returns a skewed key.
func (h HotRange) Next(rng *rand.Rand) int64 {
	hot := h.N * int64(h.FracPct) / 100
	if hot < 1 {
		hot = 1
	}
	if rng.Intn(100) < h.HotPct {
		return rng.Int63n(hot)
	}
	if h.N == hot {
		return rng.Int63n(h.N)
	}
	return hot + rng.Int63n(h.N-hot)
}

// Space returns N.
func (h HotRange) Space() int64 { return h.N }

// Name describes the distribution.
func (h HotRange) Name() string {
	return fmt.Sprintf("hot[%d%%→%d%% of %d]", h.HotPct, h.FracPct, h.N)
}

// Zipf draws keys Zipf-distributed over [0, N).
type Zipf struct {
	N int64
	S float64 // skew exponent (> 1)
}

// Next returns a Zipf key. The interface is stateless, so this path
// recreates the rand.Zipf source from the rng each call; Generator
// recognizes the Zipf distribution and caches the source instead
// (rand.NewZipf draws nothing at construction, so both paths produce
// the same key stream from the same rng).
func (z Zipf) Next(rng *rand.Rand) int64 {
	zf := rand.NewZipf(rng, z.S, 1, uint64(z.N-1))
	return int64(zf.Uint64())
}

// source builds the cached form bound to rng.
func (z Zipf) source(rng *rand.Rand) *rand.Zipf {
	return rand.NewZipf(rng, z.S, 1, uint64(z.N-1))
}

// Space returns N.
func (z Zipf) Space() int64 { return z.N }

// Name describes the distribution.
func (z Zipf) Name() string { return fmt.Sprintf("zipf(s=%.2f)[0,%d)", z.S, z.N) }

// ParseKeyDist parses a key-distribution spec shared by the pimbench
// -dist and pimload -dist flags:
//
//	uniform          uniform over [0, space)
//	zipf             Zipf with the default skew s=1.2
//	zipf:S           Zipf with skew exponent S (> 1)
//	hot:H/F          H% of keys in the first F% of the space
//
// Every distribution is seeded through the generator's rng, so the
// same (seed, spec) pair reproduces the same key stream.
func ParseKeyDist(spec string, space int64) (KeyDist, error) {
	if space < 2 {
		return nil, fmt.Errorf("harness: key space %d too small", space)
	}
	name, arg, _ := strings.Cut(spec, ":")
	switch name {
	case "", "uniform":
		return Uniform{N: space}, nil
	case "zipf":
		s := 1.2
		if arg != "" {
			var err error
			if s, err = strconv.ParseFloat(arg, 64); err != nil {
				return nil, fmt.Errorf("harness: bad zipf skew %q: %v", arg, err)
			}
		}
		if s <= 1 {
			return nil, fmt.Errorf("harness: zipf skew must be > 1, got %g", s)
		}
		return Zipf{N: space, S: s}, nil
	case "hot":
		hot, frac := 90, 10
		if arg != "" {
			if _, err := fmt.Sscanf(arg, "%d/%d", &hot, &frac); err != nil {
				return nil, fmt.Errorf("harness: bad hot spec %q (want H/F, e.g. hot:90/10): %v", arg, err)
			}
		}
		if hot < 0 || hot > 100 || frac < 1 || frac > 100 {
			return nil, fmt.Errorf("harness: hot spec %d/%d out of range", hot, frac)
		}
		return HotRange{N: space, HotPct: hot, FracPct: frac}, nil
	}
	return nil, fmt.Errorf("harness: unknown key distribution %q (want uniform, zipf[:S] or hot[:H/F])", spec)
}

// Generator produces a deterministic operation stream.
type Generator struct {
	rng  *rand.Rand
	dist KeyDist
	mix  Mix
	zipf *rand.Zipf // cached Zipf source; nil for other distributions

	// ScanSpan is the width of generated range scans: a scan covers
	// [lo, lo+ScanSpan) with lo drawn from the key distribution, so
	// skewed distributions scan hot regions exactly as often as they
	// point-read them. NewGenerator defaults it to 1/64 of the space.
	ScanSpan int64
	// ScanLimit is the per-scan result cap sent with each scan (0 lets
	// the server apply its maximum).
	ScanLimit uint16
}

// NewGenerator builds a generator; the same seed yields the same
// stream. A Zipf distribution's source is built once here — Zipf.Next
// would otherwise reconstruct it (and its internal state) on every
// draw, allocating in the load generator's inner loop.
func NewGenerator(seed int64, dist KeyDist, mix Mix) *Generator {
	if err := mix.Validate(); err != nil {
		panic(err)
	}
	g := &Generator{rng: rand.New(rand.NewSource(seed)), dist: dist, mix: mix}
	if z, ok := dist.(Zipf); ok {
		g.zipf = z.source(g.rng)
	}
	if g.ScanSpan = dist.Space() / 64; g.ScanSpan < 1 {
		g.ScanSpan = 1
	}
	return g
}

// Next returns the next operation. This is the injector's per-op cost
// on every load path, so it stays allocation-free; the uncached
// distributions draw through the KeyDist interface, whose module
// implementations are pure arithmetic over the rng.
//
//pimvet:allocfree //pimvet:nonblocking
func (g *Generator) Next() Op {
	var k int64
	if g.zipf != nil {
		k = int64(g.zipf.Uint64())
	} else {
		k = g.dist.Next(g.rng)
	}
	r := g.rng.Intn(100)
	if c := g.mix.ContainsPct; r < c {
		return Op{Kind: Contains, Key: k}
	} else if r -= c; r < g.mix.AddPct {
		return Op{Kind: Add, Key: k}
	} else if r -= g.mix.AddPct; r < g.mix.RemovePct {
		return Op{Kind: Remove, Key: k}
	} else if r -= g.mix.RemovePct; r < g.mix.ScanPct {
		return Op{Kind: Scan, Key: k, Hi: k + g.ScanSpan, Limit: g.ScanLimit}
	} else if r -= g.mix.ScanPct; r < g.mix.PredPct {
		return Op{Kind: Pred, Key: k}
	} else if r -= g.mix.PredPct; r < g.mix.SuccPct {
		return Op{Kind: Succ, Key: k}
	} else if r -= g.mix.SuccPct; r < g.mix.PopMinPct {
		return Op{Kind: PopMin}
	}
	return Op{Kind: PopMax}
}

// ListStream adapts the generator to the signature pimlist clients use.
func (g *Generator) ListStream() func(seq uint64) seqlist.Op {
	return func(uint64) seqlist.Op { return g.Next().ToList() }
}

// SkipStream adapts the generator to the signature pimskip clients use.
func (g *Generator) SkipStream() func(seq uint64) seqskip.Op {
	return func(uint64) seqskip.Op { return g.Next().ToSkip() }
}

// PreloadKeys returns every other key of [0, space) — the standard
// half-full initial population whose steady state matches a balanced
// add/remove mix.
func PreloadKeys(space int64) []int64 {
	keys := make([]int64, 0, space/2)
	for k := int64(0); k < space; k += 2 {
		keys = append(keys, k)
	}
	return keys
}
