package harness

import (
	"testing"

	"pimds/internal/model"
	"pimds/internal/sim"
)

// quickSimOpts returns tiny measurement windows for determinism tests:
// the property is bit-exactness, not statistical stability, so short
// windows suffice.
func quickSimOpts(seed int64) SimOpts {
	o := DefaultSimOpts()
	o.Warmup = 20 * sim.Microsecond
	o.Measure = 200 * sim.Microsecond
	o.Seed = seed
	return o
}

// TestSimSeedDeterminism: identical seeds must give bit-identical
// virtual-time results; the simulator has no hidden wall-clock or map
// iteration dependence.
func TestSimSeedDeterminism(t *testing.T) {
	runs := []struct {
		name string
		f    func(o SimOpts) RunResult
	}{
		{"list-pim-combining", func(o SimOpts) RunResult {
			return SimList(o, model.PIMListCombining, 4, 400)
		}},
		{"list-fine-grained", func(o SimOpts) RunResult {
			return SimList(o, model.FineGrainedLockList, 4, 400)
		}},
		{"skip-pim", func(o SimOpts) RunResult {
			r, _ := SimSkipPIM(o, 4, 8, 1<<12)
			return r
		}},
		{"queue-pim", func(o SimOpts) RunResult {
			return SimPIMQueue(o, QueueRegime{Cores: 2, Threshold: 1 << 30,
				Pipelining: true, Dequeuers: 6, PrefillLong: true})
		}},
	}
	for _, r := range runs {
		t.Run(r.name, func(t *testing.T) {
			a := r.f(quickSimOpts(7))
			b := r.f(quickSimOpts(7))
			if a.Completed != b.Completed || a.Ops != b.Ops {
				t.Errorf("same seed diverged: (%d, %v) vs (%d, %v)",
					a.Completed, a.Ops, b.Completed, b.Ops)
			}
			if a.Latency != nil && b.Latency != nil {
				a50, a95, a99 := a.Latency.Percentiles()
				b50, b95, b99 := b.Latency.Percentiles()
				if a50 != b50 || a95 != b95 || a99 != b99 {
					t.Errorf("same seed diverged in latency: (%d,%d,%d) vs (%d,%d,%d)",
						a50, a95, a99, b50, b95, b99)
				}
			}
		})
	}
}

// TestSimSeedChangesStream: a different seed must actually change the
// workload (otherwise Seed would be decorative).
func TestSimSeedChangesStream(t *testing.T) {
	a := SimList(quickSimOpts(0), model.PIMListCombining, 4, 400)
	b := SimList(quickSimOpts(1), model.PIMListCombining, 4, 400)
	if a.Completed == b.Completed && a.Ops == b.Ops {
		t.Errorf("seeds 0 and 1 produced identical runs (%d ops) — seed not threaded", a.Completed)
	}
}

// TestSeedZeroMatchesLegacyBase: SimOpts.seed must leave the base
// untouched at Seed 0 so historical results stay reproducible.
func TestSeedZeroMatchesLegacyBase(t *testing.T) {
	var o SimOpts
	if got := o.seed(1234); got != 1234 {
		t.Errorf("seed(1234) with Seed=0 = %d, want 1234", got)
	}
	o.Seed = 2
	if got := o.seed(1234); got == 1234 {
		t.Error("seed(1234) with Seed=2 did not perturb the base")
	}
}
