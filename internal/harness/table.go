package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: a title, column headers, and
// string rows, printable as aligned text or CSV.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// formatFloat renders throughputs compactly (3 significant digits with
// magnitude suffix) and small numbers plainly.
func formatFloat(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.3gG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.3gK", v/1e3)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// WriteText renders the table as aligned text.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
		return err
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = cell + strings.Repeat(" ", widths[i]-len([]rune(cell)))
		}
		_, err := fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	if err := line(seps); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "  note: %s\n", t.Note); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the table as CSV (RFC-4180-ish; cells here never
// contain commas or quotes).
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Write renders in the requested format: "table" or "csv".
func (t *Table) Write(w io.Writer, format string) error {
	if format == "csv" {
		return t.WriteCSV(w)
	}
	return t.WriteText(w)
}
