// Command pimserve serves one of the repo's data structures over TCP
// using the wire protocol, with flat-combining request batching: one
// combiner goroutine per shard executes whole batches of client
// operations against a sequential structure (see DESIGN.md, "Flat
// combining as a server architecture").
//
// Usage:
//
//	pimserve -structure skip -shards 8 -addr :7070 -metrics :7071
//	pimserve -structure queue -addr :7070
//	pimserve -structure hash -wal-dir /var/lib/pimserve -fsync batch
//
// On SIGINT/SIGTERM the server drains: queued operations execute,
// their responses flush, then connections close and the process exits
// 0 with a summary on stderr. Acknowledged operations are never lost.
package main

//pimvet:allow-file determinism: server binary configures wall-clock deadlines and combine windows for the host-side network server; no simulated state involved

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pimds/internal/buildinfo"
	"pimds/internal/obs"
	"pimds/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7070", "TCP listen address")
		metricsAddr = flag.String("metrics", "", "HTTP address serving the obs metrics snapshot at /metrics (empty = off)")
		structure   = flag.String("structure", "skip", "data structure: list|skip|hash|queue|stack")
		shards      = flag.Int("shards", 8, "combiner shards (sets are range-partitioned; queue/stack require 1)")
		keySpace    = flag.Int64("keyspace", 1<<16, "exclusive key bound for set structures")
		queueDepth  = flag.Int("queue-depth", 1024, "per-shard pending-op queue capacity (backpressure bound)")
		batchMax    = flag.Int("batch-max", 0, "max ops per combiner pass (0 = wire frame limit)")
		combineWait = flag.Duration("combine-wait", 0, "extra time a combiner lingers to grow a batch (0 = serve immediately)")
		idleTimeout = flag.Duration("idle-timeout", 0, "close connections idle this long (0 = never)")
		writeTO     = flag.Duration("write-timeout", 30*time.Second, "per-frame write deadline to slow clients")
		seed        = flag.Int64("seed", 1, "skip-list tower seed")
		opsAddr     = flag.String("ops-addr", "", "HTTP ops endpoint: Prometheus /metrics, /metrics/history, /healthz, /buildinfo, /slow, /trace, /debug/pprof (empty = off)")
		traceSample = flag.Float64("trace-sample", 0, "fraction of request frames to trace (0 = only client-requested)")
		traceRing   = flag.Int("trace-ring", 256, "finished spans retained per shard for /trace")
		slowThresh  = flag.Duration("slow-threshold", 0, "log sampled requests at least this slow to /slow (0 = off)")
		windowTick  = flag.Duration("window-tick", time.Second, "windowed-metrics rotation interval for /metrics/history and /healthz (0 = off)")
		healthP99   = flag.Duration("health-p99", 0, "p99 latency budget for the health rules (0 = default)")
		walDir      = flag.String("wal-dir", "", "directory for the write-ahead log and snapshots (empty = no durability)")
		fsync       = flag.String("fsync", server.FsyncBatch, "WAL fsync policy: always (per batch)|batch (per writer pass, group commit)|off (OS page cache only)")
		snapEvery   = flag.Duration("snapshot-every", 10*time.Second, "interval between snapshots that truncate the WAL (0 = only on clean shutdown)")
		version     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Line("pimserve"))
		return
	}

	if (*structure == server.StructQueue || *structure == server.StructStack) && *shards > 1 {
		fmt.Fprintf(os.Stderr, "pimserve: %s is inherently serial; forcing -shards 1 (was %d)\n", *structure, *shards)
		*shards = 1
	}

	reg := obs.NewRegistry()
	srv, err := server.New(server.Config{
		Structure:     *structure,
		Shards:        *shards,
		KeySpace:      *keySpace,
		QueueDepth:    *queueDepth,
		BatchMax:      *batchMax,
		CombineWait:   *combineWait,
		IdleTimeout:   *idleTimeout,
		WriteTimeout:  *writeTO,
		Seed:          *seed,
		Reg:           reg,
		TraceSample:   *traceSample,
		TraceRing:     *traceRing,
		SlowThreshold: *slowThresh,
		WindowTick:    *windowTick,
		HealthRules:   server.DefaultHealthRules(*healthP99),
		WALDir:        *walDir,
		Fsync:         *fsync,
		SnapshotEvery: *snapEvery,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "pimserve: serving %s (%d shards, keyspace %d) on %s\n",
		*structure, *shards, *keySpace, ln.Addr())
	if *walDir != "" {
		fmt.Fprintf(os.Stderr, "pimserve: durable (wal-dir %s, fsync %s, snapshot every %v)\n",
			*walDir, *fsync, *snapEvery)
	}

	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pimserve: metrics on http://%s/metrics\n", mln.Addr())
		go func() {
			mux := http.NewServeMux()
			mux.Handle("/metrics", server.MetricsHandler(reg))
			// Ignore the error on shutdown: the process is exiting.
			http.Serve(mln, mux)
		}()
	}

	if *opsAddr != "" {
		oln, err := net.Listen("tcp", *opsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pimserve: ops endpoint on http://%s/metrics\n", oln.Addr())
		go func() {
			// Ignore the error on shutdown: the process is exiting.
			http.Serve(oln, srv.OpsHandler())
		}()
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "pimserve: %v — draining\n", sig)
		srv.Shutdown()
	}()

	if err := srv.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	snap := reg.Snapshot()
	fmt.Fprintf(os.Stderr, "pimserve: drained cleanly; served %d ops over %d connections (%d rejected)\n",
		snap.Counters["server/ops/total"], snap.Counters["server/conns/total"], snap.Counters["server/ops/rejected"])
}
