// Command pimload generates network load against a pimserve instance
// and reports throughput and client-observed latency percentiles.
//
// Usage:
//
//	pimload -addr 127.0.0.1:7070 -conns 64 -pipeline 16 -duration 5s
//	pimload -addr 127.0.0.1:7070 -dist zipf:1.3 -mix 90/5/5 -json out.json
//	pimload -addr 127.0.0.1:7070 -structure queue -rate 200000
//
// By default it runs closed-loop (each connection keeps -pipeline ops
// outstanding); -rate switches to open-loop injection at a fixed total
// ops/s. -json writes a benchfmt report so benchdiff can compare runs.
package main

//pimvet:allow-file determinism: load-generator binary measures wall-clock round trips against a live server; key streams remain seeded

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"pimds/internal/buildinfo"
	"pimds/internal/harness"
	"pimds/internal/loadgen"
	"pimds/internal/server"
	"pimds/internal/wire"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "pimserve TCP address")
		structure = flag.String("structure", "set", "op family (set|queue|stack) or the server's exact structure (list|skip|hash|queue|stack) for mix validation")
		conns     = flag.Int("conns", 64, "concurrent connections")
		pipeline  = flag.Int("pipeline", 16, "ops outstanding per connection")
		rate      = flag.Float64("rate", 0, "open-loop target ops/s across all conns (0 = closed loop)")
		duration  = flag.Duration("duration", 5*time.Second, "injection duration")
		keys      = flag.Int64("keys", 1<<16, "key space (must be within the server's -keyspace)")
		dist      = flag.String("dist", "uniform", "key distribution: uniform | zipf[:S] | hot[:H/F]")
		mixSpec   = flag.String("mix", "0/50/50", "set mix C/A/R in percent, plus ordered terms, e.g. 60/15/15,scan:8,popmin:2")
		scanSpan  = flag.Int64("scan-span", 0, "key width of generated range scans (0 = 1/64 of the key space)")
		scanLimit = flag.Int("scan-limit", 0, "per-scan result cap sent on the wire (0 = server max)")
		seed      = flag.Int64("seed", 1, "key-stream seed")
		preload   = flag.Bool("preload", false, "fill the set to half occupancy before measuring")
		jsonPath  = flag.String("json", "", "write the benchfmt report here ('-' = stdout)")
		traceSamp = flag.Float64("trace-sample", 0, "fraction of request frames sent with trace context (server records spans for them)")
		sloP99    = flag.Duration("slo-p99", 0, "p99 latency budget; prints an SLO verdict and burn rate (0 = off)")
		sloStrict = flag.Bool("slo-strict", false, "exit 3 when the SLO verdict is FAIL")
		healthURL = flag.String("health", "", "pimserve /healthz URL to cite next to the client-side verdict (empty = off)")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Line("pimload"))
		return
	}

	if *scanLimit < 0 || *scanLimit > wire.MaxScanLimit {
		// Catch it here rather than as a stream of rejected frames: the
		// limit rides in every scan op and the server drops violators.
		fmt.Fprintf(os.Stderr, "pimload: -scan-limit %d out of range (wire protocol caps scans at %d results; 0 = server max)\n",
			*scanLimit, wire.MaxScanLimit)
		os.Exit(2)
	}

	kd, err := harness.ParseKeyDist(*dist, *keys)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	mix, err := harness.ParseMix(*mixSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimload: bad -mix %q: %v (want C/A/R plus optional ordered terms, e.g. 60/15/15,scan:8,popmin:2)\n", *mixSpec, err)
		os.Exit(2)
	}
	family, err := resolveStructure(*structure, mix)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := loadgen.Config{
		Addr:        *addr,
		Structure:   family,
		Conns:       *conns,
		Pipeline:    *pipeline,
		Rate:        *rate,
		Duration:    *duration,
		Dist:        kd,
		Mix:         mix,
		Seed:        *seed,
		ScanSpan:    *scanSpan,
		ScanLimit:   *scanLimit,
		TraceSample: *traceSamp,
		SLOP99:      *sloP99,
	}
	if *preload {
		if err := loadgen.Preload(cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	res, err := loadgen.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(res)

	if *healthURL != "" {
		// The client-side SLO verdict cites the server's own view: the
		// /healthz verdict covers the load window just generated.
		if line, err := scrapeHealth(*healthURL); err != nil {
			fmt.Fprintf(os.Stderr, "pimload: health scrape: %v\n", err)
		} else {
			fmt.Println("server health:", line)
		}
	}

	if *jsonPath != "" {
		w := os.Stdout
		if *jsonPath != "-" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := res.Report().Write(w); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if slo, ok := res.SLO(); ok && !slo.Met && *sloStrict {
		os.Exit(3)
	}
}

// resolveStructure maps -structure to the loadgen op family. The
// generic family names (set|queue|stack) pass through unvalidated; an
// exact server structure name is checked against its capability table
// so a mix the server would reject fails here with a useful message
// instead of as a stream of StatusBadKind responses.
func resolveStructure(structure string, mix harness.Mix) (string, error) {
	if structure == loadgen.StructSet {
		// "set" is the generic family — the exact structure (and so the
		// capability row) is unknown, the server does the gating.
		return structure, nil
	}
	caps, ok := server.LookupCapability(structure)
	if !ok {
		return "", fmt.Errorf("pimload: unknown -structure %q (want set|queue|stack or %s)",
			structure, strings.Join(server.Structures(), "|"))
	}
	for _, t := range []struct {
		pct  int
		kind wire.OpKind
	}{
		{mix.ScanPct, wire.RangeScan},
		{mix.PredPct, wire.Pred},
		{mix.SuccPct, wire.Succ},
		{mix.PopMinPct, wire.PopMin},
		{mix.PopMaxPct, wire.PopMax},
	} {
		if t.pct > 0 && !caps.Supports(t.kind) {
			return "", fmt.Errorf("pimload: structure %q does not serve %s (supported ops: %s)",
				structure, t.kind, caps.KindNames())
		}
	}
	switch structure {
	case server.StructQueue:
		return loadgen.StructQueue, nil
	case server.StructStack:
		return loadgen.StructStack, nil
	default:
		return loadgen.StructSet, nil
	}
}

// scrapeHealth fetches a /healthz document and folds it to one line:
// the status plus any non-ok rules.
func scrapeHealth(url string) (string, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var doc struct {
		Status string `json:"status"`
		Rules  []struct {
			Rule   string `json:"rule"`
			State  string `json:"state"`
			Reason string `json:"reason"`
		} `json:"rules"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&doc); err != nil {
		return "", err
	}
	line := doc.Status
	for _, r := range doc.Rules {
		if r.State != "ok" {
			line += fmt.Sprintf("; [%s] %s: %s", r.State, r.Rule, r.Reason)
		}
	}
	return line, nil
}
