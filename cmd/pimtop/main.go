// Command pimtop is a live terminal dashboard for a running pimserve:
// it scrapes the ops endpoint's /metrics/history and /healthz and
// renders per-shard throughput, batch sizes, queue depths, latency
// quantiles with sparklines, and the active health alerts — top(1) for
// the flat-combining server.
//
// Usage:
//
//	pimtop -ops http://127.0.0.1:7072             # live, redraw every interval
//	pimtop -ops http://127.0.0.1:7072 -once       # one plain-text frame
//	pimtop -ops http://127.0.0.1:7072 -once -json # machine-readable summary (CI)
//
// The dashboard is read-only and stdlib-only; it renders whatever the
// server's window has retained, so a freshly started server shows
// samples as they accumulate.
package main

//pimvet:allow-file determinism: interactive dashboard binary; scrape pacing and timeouts are host wall-clock by design

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"pimds/internal/buildinfo"
	"pimds/internal/obs"
	"pimds/internal/obs/health"
)

// healthDoc mirrors the server's /healthz document.
type healthDoc struct {
	Status    string              `json:"status"`
	Ready     bool                `json:"ready"`
	WindowSeq uint64              `json:"window_seq"`
	Rules     []health.RuleResult `json:"rules"`
}

// summary is the -json output: one scrape folded into the numbers a
// script wants to assert on.
type summary struct {
	Status    string              `json:"status"`
	Ready     bool                `json:"ready"`
	WindowSeq uint64              `json:"window_seq"`
	Tiers     int                 `json:"tiers"`
	Samples   int                 `json:"samples"`
	OpsPerSec float64             `json:"ops_per_sec"`
	P50NS     int64               `json:"p50_ns"`
	P99NS     int64               `json:"p99_ns"`
	ConnsOpen int64               `json:"conns_open"`
	WAL       *walRow             `json:"wal,omitempty"`
	Shards    []shardRow          `json:"shards"`
	Alerts    []health.RuleResult `json:"alerts"`
}

// walRow summarizes the durability pipeline; present only when the
// server runs with a WAL.
type walRow struct {
	RecordsPerSec float64 `json:"records_per_sec"`
	BytesPerSec   float64 `json:"bytes_per_sec"`
	FsyncsPerSec  float64 `json:"fsyncs_per_sec"`
	GroupMean     float64 `json:"group_mean"`
	LagP99NS      int64   `json:"lag_p99_ns"`
	Snapshots     uint64  `json:"snapshots"`
}

type shardRow struct {
	Shard      string  `json:"shard"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	BatchMean  float64 `json:"batch_mean"`
	QueueDepth int64   `json:"queue_depth"`
}

func main() {
	var (
		opsURL   = flag.String("ops", "http://127.0.0.1:7072", "pimserve ops endpoint base URL")
		interval = flag.Duration("interval", time.Second, "refresh interval in live mode")
		once     = flag.Bool("once", false, "render a single frame and exit")
		jsonOut  = flag.Bool("json", false, "with -once, emit a machine-readable summary instead of the dashboard")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Line("pimtop"))
		return
	}

	client := &http.Client{Timeout: 5 * time.Second}
	base := strings.TrimRight(*opsURL, "/")

	if *once {
		hist, hd, err := scrape(client, base)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pimtop:", err)
			os.Exit(1)
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			enc.Encode(summarize(hist, hd))
			return
		}
		os.Stdout.WriteString(render(hist, hd, base, false))
		return
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	t := time.NewTicker(*interval)
	defer t.Stop()
	for {
		hist, hd, err := scrape(client, base)
		if err != nil {
			os.Stdout.WriteString("\x1b[2J\x1b[H" + "pimtop: " + err.Error() + "\n")
		} else {
			os.Stdout.WriteString(render(hist, hd, base, true))
		}
		select {
		case <-sigs:
			fmt.Println()
			return
		case <-t.C:
		}
	}
}

// scrape fetches one consistent-enough view: history first, then the
// health verdict (the verdict may be one rotation newer; both carry
// their own seq).
func scrape(client *http.Client, base string) (*obs.History, *healthDoc, error) {
	var hist obs.History
	if err := getJSON(client, base+"/metrics/history", &hist); err != nil {
		return nil, nil, err
	}
	var hd healthDoc
	// /healthz answers 503 while draining or failing; the body is still
	// the document, so decode regardless of status.
	if err := getJSON(client, base+"/healthz", &hd); err != nil {
		return nil, nil, err
	}
	return &hist, &hd, nil
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("%s: %v", url, err)
	}
	return nil
}

// rate converts a per-interval delta into a per-second rate.
func rate(delta uint64, durNS int64) float64 {
	if durNS <= 0 {
		return 0
	}
	return float64(delta) / (float64(durNS) / 1e9)
}

// summarize folds the latest finest-tier sample into the -json doc.
func summarize(hist *obs.History, hd *healthDoc) summary {
	s := summary{
		Status: hd.Status, Ready: hd.Ready, WindowSeq: hd.WindowSeq,
		Tiers: len(hist.Tiers), Shards: []shardRow{}, Alerts: []health.RuleResult{},
	}
	for _, r := range hd.Rules {
		if r.State != health.Ok {
			s.Alerts = append(s.Alerts, r)
		}
	}
	fine := hist.Tier("")
	if fine == nil {
		return s
	}
	s.Samples = len(fine.Samples)
	latest := fine.Latest()
	if latest == nil {
		return s
	}
	s.OpsPerSec = rate(latest.Counters["server/ops/total"], latest.DurNS)
	if hs, ok := latest.Histograms["server/op_latency_ns"]; ok {
		s.P50NS, s.P99NS = hs.P50, hs.P99
	}
	s.ConnsOpen = latest.Gauges["server/conns/open"]
	if w := walSummary(latest); w != nil {
		s.WAL = w
	}
	for _, name := range sortedKeys(latest.Histograms) {
		shard, ok := shardOf(name, "batch_size")
		if !ok {
			continue
		}
		row := shardRow{Shard: shard, BatchMean: latest.Histograms[name].Mean}
		row.OpsPerSec = rate(latest.Counters["server/shard/"+shard+"/combines"], latest.DurNS) * row.BatchMean
		row.QueueDepth = latest.Gauges["server/shard/"+shard+"/queue_depth"]
		s.Shards = append(s.Shards, row)
	}
	return s
}

// walSummary folds the WAL metrics out of one sample, or nil when the
// server runs without durability (the counters are registered only
// when a WAL is configured).
func walSummary(latest *obs.WindowSample) *walRow {
	records, ok := latest.Counters["server/wal/records"]
	if !ok {
		return nil
	}
	w := &walRow{
		RecordsPerSec: rate(records, latest.DurNS),
		BytesPerSec:   rate(latest.Counters["server/wal/bytes"], latest.DurNS),
		FsyncsPerSec:  rate(latest.Counters["server/wal/fsyncs"], latest.DurNS),
		Snapshots:     latest.Counters["server/wal/snapshots"],
	}
	if hs, ok := latest.Histograms["server/wal/group"]; ok {
		w.GroupMean = hs.Mean
	}
	if hs, ok := latest.Histograms["server/wal/lag_ns"]; ok {
		w.LagP99NS = hs.P99
	}
	return w
}

// shardOf extracts NNN from server/shard/NNN/<metric>.
func shardOf(name, metric string) (string, bool) {
	rest, ok := strings.CutPrefix(name, "server/shard/")
	if !ok {
		return "", false
	}
	shard, m, ok := strings.Cut(rest, "/")
	if !ok || m != metric {
		return "", false
	}
	return shard, true
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// spark renders values as a fixed-width sparkline scaled to their max.
func spark(vals []float64) string {
	var max float64
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if max > 0 {
			i = int(v / max * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[i])
	}
	return b.String()
}

// ns formats a nanosecond latency humanely.
func ns(v int64) string {
	return time.Duration(v).Truncate(time.Microsecond).String()
}

// render draws one dashboard frame. live prepends the ANSI
// clear-screen so the frame repaints in place.
func render(hist *obs.History, hd *healthDoc, base string, live bool) string {
	var b strings.Builder
	if live {
		b.WriteString("\x1b[2J\x1b[H")
	}
	fmt.Fprintf(&b, "pimtop — %s   status: %s   ready: %v   window seq: %d\n",
		base, hd.Status, hd.Ready, hd.WindowSeq)

	fine := hist.Tier("")
	latest := fine.Latest()
	if latest == nil {
		b.WriteString("\n  no window samples yet (is -window-tick enabled on the server?)\n")
		return b.String()
	}

	var opsRates, p99s []float64
	for i := range fine.Samples {
		s := &fine.Samples[i]
		opsRates = append(opsRates, rate(s.Counters["server/ops/total"], s.DurNS))
		p99s = append(p99s, float64(s.Histograms["server/op_latency_ns"].P99))
	}
	lat := latest.Histograms["server/op_latency_ns"]
	fmt.Fprintf(&b, "\n  ops/s %10.0f  %s\n", opsRates[len(opsRates)-1], spark(opsRates))
	fmt.Fprintf(&b, "  p99   %10s  %s   (p50 %s, max %s)\n",
		ns(lat.P99), spark(p99s), ns(lat.P50), ns(lat.Max))
	fmt.Fprintf(&b, "  conns %10d   frames in/out %0.f/%.0f per s\n",
		latest.Gauges["server/conns/open"],
		rate(latest.Counters["server/frames/in"], latest.DurNS),
		rate(latest.Counters["server/frames/out"], latest.DurNS))
	if w := walSummary(latest); w != nil {
		fmt.Fprintf(&b, "  wal   %10.0f rec/s  %.0f fsync/s  group %.1f  ack lag p99 %s  snaps %d\n",
			w.RecordsPerSec, w.FsyncsPerSec, w.GroupMean, ns(w.LagP99NS), w.Snapshots)
	}

	b.WriteString("\n  shard     ops/s   batch   queue\n")
	for _, name := range sortedKeys(latest.Histograms) {
		shard, ok := shardOf(name, "batch_size")
		if !ok {
			continue
		}
		bs := latest.Histograms[name]
		fmt.Fprintf(&b, "  %-5s %9.0f  %6.1f  %6d\n",
			shard,
			rate(latest.Counters["server/shard/"+shard+"/combines"], latest.DurNS)*bs.Mean,
			bs.Mean,
			latest.Gauges["server/shard/"+shard+"/queue_depth"])
	}

	var alerts []health.RuleResult
	for _, r := range hd.Rules {
		if r.State != health.Ok {
			alerts = append(alerts, r)
		}
	}
	if len(alerts) == 0 {
		fmt.Fprintf(&b, "\n  alerts: none (%d rules ok)\n", len(hd.Rules))
	} else {
		b.WriteString("\n  alerts:\n")
		for _, r := range alerts {
			fmt.Fprintf(&b, "   [%s] %s: %s\n", strings.ToUpper(r.State.String()), r.Rule, r.Reason)
		}
	}
	return b.String()
}
