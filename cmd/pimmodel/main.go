// Command pimmodel evaluates the paper's analytical performance model
// (Section 3): it prints Table 1, Table 2 and the Section 5.2 queue
// bounds for chosen parameters, and solves the crossover conditions
// the paper states.
//
// Usage:
//
//	pimmodel -table 1 -n 1000 -p 8
//	pimmodel -table 2 -N 65536 -p 28 -k 16
//	pimmodel -table queue -p 16
//	pimmodel -crossovers -p 28
package main

import (
	"flag"
	"fmt"
	"os"

	"pimds/internal/harness"
	"pimds/internal/model"
)

func main() {
	var (
		table = flag.String("table", "", "which table: 1, 2 or queue (empty = all)")
		cross = flag.Bool("crossovers", false, "print crossover conditions")
		n     = flag.Int("n", 1000, "linked-list size")
		bigN  = flag.Int("N", 1<<16, "skip-list size")
		p     = flag.Int("p", 8, "CPU threads")
		k     = flag.Int("k", 8, "partitions / vaults")
		r1    = flag.Float64("r1", model.DefaultR1, "Lcpu/Lpim")
		r2    = flag.Float64("r2", model.DefaultR2, "Lcpu/Lllc")
		r3    = flag.Float64("r3", model.DefaultR3, "Latomic/Lcpu")
		lcpu  = flag.Duration("lcpu", model.DefaultLcpu, "absolute CPU memory latency")
	)
	flag.Parse()

	pr := model.Params{Lcpu: *lcpu, R1: *r1, R2: *r2, R3: *r3}
	if err := pr.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	emit := func(title string, rows []model.Row) {
		t := &harness.Table{Title: title, Columns: []string{"algorithm", "formula", "throughput"}}
		for _, r := range rows {
			t.AddRow(r.Algorithm, r.Formula, model.FormatOps(r.OpsPerSec))
		}
		if err := t.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	all := *table == "" && !*cross
	if *table == "1" || all {
		emit(fmt.Sprintf("Table 1 — linked-lists (n=%d, p=%d)", *n, *p),
			model.Table1(pr, model.ListConfig{N: *n, P: *p}))
	}
	if *table == "2" || all {
		emit(fmt.Sprintf("Table 2 — skip-lists (N=%d, p=%d, k=%d, β=%.1f)", *bigN, *p, *k, model.Beta(*bigN)),
			model.Table2(pr, model.SkipConfig{N: *bigN, P: *p, K: *k}))
	}
	if *table == "queue" || all {
		emit(fmt.Sprintf("§5.2 — FIFO queues (p=%d)", *p),
			model.QueueTable(pr, model.QueueConfig{P: *p}))
	}
	if *cross || all {
		lc := model.ListConfig{N: *n, P: *p}
		sc := model.SkipConfig{N: *bigN, P: *p}
		fmt.Println("crossovers:")
		fmt.Printf("  linked-list: PIM+combining beats fine-grained locks when r1 > %.3f (always < 2)\n",
			model.MinR1ForPIMListWin(lc))
		fmt.Printf("  linked-list: naive PIM wins only up to p = %d threads at r1 = %v\n",
			model.MaxThreadsNaivePIMListWins(pr), pr.R1)
		fmt.Printf("  skip-list: PIM needs k ≥ %d partitions to beat %d lock-free threads (≈ p/r1)\n",
			model.MinKForPIMSkipWin(pr, sc), *p)
		fmt.Printf("  skip-list: PIM is %.2f× FC at equal k (→ r1 = %v for large β)\n",
			model.PIMSkipVsFCSpeedup(pr, sc), pr.R1)
		fmt.Printf("  queue: PIM = %.2f× FC and %.2f× F&A (wins iff 2·r1/r2 > 1 and r1·r3 > 1: %v)\n",
			model.PIMQueueVsFCSpeedup(pr), model.PIMQueueVsFAASpeedup(pr), model.PIMQueueWins(pr))
	}
}
