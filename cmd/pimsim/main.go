// Command pimsim runs one configurable simulation of a PIM-managed
// data structure and prints throughput plus per-core statistics — the
// interactive companion to cmd/pimbench.
//
// Usage:
//
//	pimsim -structure skiplist -vaults 8 -cpus 16 -keyspace 16384 -measure 5ms
//	pimsim -structure queue -vaults 4 -cpus 12 -threshold 64
//	pimsim -structure list -combining=false -cpus 8
//	pimsim -structure list -cpus 16 -profile - -flame list.folded
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"pimds/internal/buildinfo"
	"pimds/internal/core/pimhash"
	"pimds/internal/core/pimlist"
	"pimds/internal/core/pimqueue"
	"pimds/internal/core/pimskip"
	"pimds/internal/core/pimstack"
	"pimds/internal/harness"
	"pimds/internal/model"
	"pimds/internal/obs"
	"pimds/internal/prof"
	"pimds/internal/sim"
)

func main() {
	var (
		structure = flag.String("structure", "skiplist", "list, skiplist, queue, stack or hashmap")
		vaults    = flag.Int("vaults", 8, "PIM vaults / partitions (skiplist, queue)")
		cpus      = flag.Int("cpus", 16, "client CPU threads")
		keySpace  = flag.Int64("keyspace", 1<<14, "key space (list, skiplist)")
		combining = flag.Bool("combining", true, "combining optimization (list)")
		threshold = flag.Int("threshold", 64, "segment threshold (queue)")
		pipeline  = flag.Bool("pipelining", true, "reply pipelining (queue)")
		warmupD   = flag.Duration("warmup", 0, "virtual warmup (default 500µs)")
		measureD  = flag.Duration("measure", 0, "virtual measurement window (default 5ms)")
		r1        = flag.Float64("r1", model.DefaultR1, "Lcpu/Lpim")
		r2        = flag.Float64("r2", model.DefaultR2, "Lcpu/Lllc")
		r3        = flag.Float64("r3", model.DefaultR3, "Latomic/Lcpu")
		seed      = flag.Int64("seed", 1, "workload seed")
		trace     = flag.Bool("trace", false, "print every message and served request (very verbose; use tiny -measure)")
		traceJSON = flag.String("trace-json", "", "write a Chrome trace-event JSON file (load in chrome://tracing or Perfetto)")
		metrics   = flag.String("metrics", "", "write a metrics snapshot as JSON to this file (\"-\" or /dev/stdout for stdout)")
		profile   = flag.String("profile", "", "write a per-request critical-path attribution report as JSON to this file (\"-\" = stdout)")
		flame     = flag.String("flame", "", "write folded flamegraph stacks (component;structure;kind) to this file (\"-\" = stdout)")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Line("pimsim"))
		return
	}

	pr := model.Params{Lcpu: model.DefaultLcpu, R1: *r1, R2: *r2, R3: *r3}
	if err := pr.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	warmup := 500 * sim.Microsecond
	measure := 5 * sim.Millisecond
	if *warmupD > 0 {
		warmup = sim.FromDuration(*warmupD)
	}
	if *measureD > 0 {
		measure = sim.FromDuration(*measureD)
	}
	e := sim.NewEngine(sim.ConfigFromParams(pr))

	var tracers []sim.Tracer
	if *trace {
		tracers = append(tracers, &sim.WriterTracer{W: os.Stdout})
	}
	var chrome *sim.ChromeTracer
	if *traceJSON != "" {
		f, err := os.Create(*traceJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		chrome = sim.NewChromeTracer(f, e)
		tracers = append(tracers, chrome)
	}
	switch len(tracers) {
	case 0:
	case 1:
		e.SetTracer(tracers[0])
	default:
		e.SetTracer(sim.MultiTracer(tracers))
	}

	// Install the registry before run* builds the structure: structures
	// capture the registry at construction time.
	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
		e.SetMetrics(reg)
	}

	// Attach the profiler before any client issues its first request so
	// every request is tracked from injection.
	var profiler *prof.Profiler
	if *profile != "" || *flame != "" {
		profiler = prof.New(e, prof.Options{Structure: *structure})
		e.SetProfiler(profiler)
	}

	cfg := e.Config()
	fmt.Printf("latencies: Lcpu=%v Lpim=%v Lllc=%v Latomic=%v Lmessage=%v\n",
		cfg.Lcpu, cfg.Lpim, cfg.Lllc, cfg.Latomic, cfg.Lmessage)

	switch *structure {
	case "list":
		e.SetKindNamer(pimlist.KindName)
		runList(e, *cpus, *keySpace, *combining, *seed, warmup, measure)
	case "skiplist":
		e.SetKindNamer(pimskip.KindName)
		runSkip(e, *vaults, *cpus, *keySpace, *seed, warmup, measure)
	case "queue":
		e.SetKindNamer(pimqueue.KindName)
		runQueue(e, *vaults, *cpus, *threshold, *pipeline, warmup, measure)
	case "stack":
		e.SetKindNamer(pimstack.KindName)
		runStack(e, *vaults, *cpus, *threshold, *pipeline, warmup, measure)
	case "hashmap":
		e.SetKindNamer(pimhash.KindName)
		runHash(e, *vaults, *cpus, *keySpace, *seed, warmup, measure)
	default:
		fmt.Fprintf(os.Stderr, "unknown structure %q (list, skiplist, queue, stack, hashmap)\n", *structure)
		os.Exit(2)
	}

	if chrome != nil {
		if err := chrome.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "trace-json:", err)
			os.Exit(1)
		}
	}
	if reg != nil {
		if err := writeMetrics(reg, *metrics); err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
			os.Exit(1)
		}
	}
	if profiler != nil {
		if *profile != "" {
			if err := writeTo(*profile, profiler.WriteJSON); err != nil {
				fmt.Fprintln(os.Stderr, "profile:", err)
				os.Exit(1)
			}
		}
		if *flame != "" {
			if err := writeTo(*flame, profiler.WriteFolded); err != nil {
				fmt.Fprintln(os.Stderr, "flame:", err)
				os.Exit(1)
			}
		}
	}
}

// writeTo runs write against path ("-" = stdout).
func writeTo(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMetrics snapshots reg as indented JSON into path ("-" = stdout).
func writeMetrics(reg *obs.Registry, path string) error {
	if path == "-" {
		return reg.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runList(e *sim.Engine, cpus int, keySpace int64, combining bool, seed int64, warmup, measure sim.Time) {
	l := pimlist.New(e, combining)
	l.Preload(harness.PreloadKeys(keySpace))
	var clients []*sim.Client
	for i := 0; i < cpus; i++ {
		g := harness.NewGenerator(seed+int64(i), harness.Uniform{N: keySpace}, harness.Balanced())
		clients = append(clients, l.NewClient(e, g.ListStream()))
	}
	m := &sim.Meter{Engine: e, Clients: clients}
	completed, ops := m.Run(warmup, measure)
	fmt.Printf("pim list: combining=%v cpus=%d size=%d\n", combining, cpus, l.Len())
	fmt.Printf("completed %d ops in %v virtual: %s\n", completed, measure, model.FormatOps(ops))
	fmt.Printf("core: batches=%d served=%d (avg batch %.1f), vault reads=%d writes=%d\n",
		l.Batches, l.Served, float64(l.Served)/float64(max(l.Batches, 1)),
		l.Core().Vault().Reads, l.Core().Vault().Writes)
}

func runSkip(e *sim.Engine, vaults, cpus int, keySpace, seed int64, warmup, measure sim.Time) {
	s := pimskip.New(e, keySpace, vaults, uint64(seed))
	s.Preload(harness.PreloadKeys(keySpace))
	for i := 0; i < cpus; i++ {
		g := harness.NewGenerator(seed+int64(i), harness.Uniform{N: keySpace}, harness.Balanced())
		s.NewClient(g.SkipStream()).Start()
	}
	snapshot := func() uint64 {
		var total uint64
		for _, p := range s.Partitions() {
			total += p.Core().Stats.Ops
		}
		return total
	}
	completed, ops := sim.Measure(e, func() {}, snapshot, warmup, measure)
	fmt.Printf("pim skip-list: vaults=%d cpus=%d size=%d\n", vaults, cpus, s.TotalLen())
	fmt.Printf("completed %d ops in %v virtual: %s\n", completed, measure, model.FormatOps(ops))
	for i, p := range s.Partitions() {
		fmt.Printf("  vault %d: size=%d ops=%d reads=%d busy=%v\n",
			i, p.Len(), p.Core().Stats.Ops, p.Core().Vault().Reads, p.Core().Stats.Busy)
	}
}

func runStack(e *sim.Engine, vaults, cpus, threshold int, pipelining bool, warmup, measure sim.Time) {
	s := pimstack.New(e, vaults, threshold)
	s.Pipelining = pipelining
	var cpuList []*sim.CPU
	var clients []*pimstack.Client
	for i := 0; i < cpus; i++ {
		role := pimstack.Pusher
		if i%2 == 1 {
			role = pimstack.Popper
		}
		cl := s.NewClient(role)
		clients = append(clients, cl)
		cpuList = append(cpuList, cl.CPU())
	}
	start := func() {
		for _, cl := range clients {
			cl.Start()
		}
	}
	completed, ops := sim.Measure(e, start, sim.OpsOfCPUs(cpuList), warmup, measure)
	fmt.Printf("pim stack: vaults=%d cpus=%d threshold=%d pipelining=%v depth=%d\n",
		vaults, cpus, threshold, pipelining, s.Len())
	fmt.Printf("completed %d ops in %v virtual: %s\n", completed, measure, model.FormatOps(ops))
	for i, sc := range s.Cores() {
		fmt.Printf("  core %d: pushes=%d pops=%d overflows=%d reverts=%d\n",
			i, sc.Pushes, sc.Pops, sc.Overflows, sc.Reverts)
	}
}

func runHash(e *sim.Engine, vaults, cpus int, keySpace, seed int64, warmup, measure sim.Time) {
	m := pimhash.New(e, vaults)
	kv := make(map[int64]int64, keySpace/2)
	for k := int64(0); k < keySpace; k += 2 {
		kv[k] = k
	}
	m.Preload(kv)
	var clients []*sim.Client
	for i := 0; i < cpus; i++ {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		clients = append(clients, m.NewClient(func(uint64) pimhash.Op {
			k := rng.Int63n(keySpace)
			switch rng.Intn(10) {
			case 0:
				return pimhash.Op{Kind: pimhash.MsgPut, Key: k, Val: k}
			case 1:
				return pimhash.Op{Kind: pimhash.MsgDel, Key: k}
			default:
				return pimhash.Op{Kind: pimhash.MsgGet, Key: k}
			}
		}))
	}
	meter := &sim.Meter{Engine: e, Clients: clients}
	completed, ops := meter.Run(warmup, measure)
	fmt.Printf("pim hash map: vaults=%d cpus=%d size=%d\n", vaults, cpus, m.TotalLen())
	fmt.Printf("completed %d ops in %v virtual: %s\n", completed, measure, model.FormatOps(ops))
	for i, c := range m.Cores() {
		fmt.Printf("  vault %d: ops=%d reads=%d writes=%d\n",
			i, c.Stats.Ops, c.Vault().Reads, c.Vault().Writes)
	}
}

func runQueue(e *sim.Engine, vaults, cpus, threshold int, pipelining bool, warmup, measure sim.Time) {
	q := pimqueue.New(e, vaults, threshold)
	q.Pipelining = pipelining
	var cpuList []*sim.CPU
	var clients []*pimqueue.Client
	for i := 0; i < cpus; i++ {
		role := pimqueue.Enqueuer
		if i%2 == 1 {
			role = pimqueue.Dequeuer
		}
		cl := q.NewClient(role)
		clients = append(clients, cl)
		cpuList = append(cpuList, cl.CPU())
	}
	start := func() {
		for _, cl := range clients {
			cl.Start()
		}
	}
	completed, ops := sim.Measure(e, start, sim.OpsOfCPUs(cpuList), warmup, measure)
	fmt.Printf("pim queue: vaults=%d cpus=%d threshold=%d pipelining=%v len=%d\n",
		vaults, cpus, threshold, pipelining, q.Len())
	fmt.Printf("completed %d ops in %v virtual: %s\n", completed, measure, model.FormatOps(ops))
	for i, qc := range q.Cores() {
		fmt.Printf("  core %d: enq=%d deq=%d handoffs=%d segsMade=%d failed=%d\n",
			i, qc.Enqueues, qc.Dequeues, qc.Handoffs, qc.SegsMade, qc.Failed)
	}
}
