// Command benchdiff compares two machine-readable benchmark reports
// written by `pimbench -json` and flags cells whose relative change
// exceeds a threshold.
//
// Usage:
//
//	benchdiff [-threshold 10] old.json new.json
//
// Exit status: 0 when no regression was found (improvements and
// drifts are reported but do not fail), 1 when at least one column
// with a known better direction moved the wrong way beyond the
// threshold, 2 on usage or I/O errors. Structural mismatches
// (different parameters, experiments, tables or rows) are reported
// loudly but treated like drift: they usually mean the reports are
// not comparable, not that the code got slower.
package main

import (
	"flag"
	"fmt"
	"os"

	"pimds/internal/benchfmt"
)

func main() {
	threshold := flag.Float64("threshold", 10, "relative change (percent) beyond which a cell is flagged")
	allocThreshold := flag.Float64("alloc-threshold", 0, "tighter threshold (percent) for allocs/op and B/op columns (0 = same as -threshold)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: benchdiff [-threshold pct] [-alloc-threshold pct] old.json new.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	load := func(path string) *benchfmt.Report {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		rep, err := benchfmt.Read(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			os.Exit(2)
		}
		return rep
	}
	oldRep := load(flag.Arg(0))
	newRep := load(flag.Arg(1))

	findings := benchfmt.Compare(oldRep, newRep, benchfmt.CompareOptions{
		ThresholdPct:      *threshold,
		AllocThresholdPct: *allocThreshold,
	})
	counts := map[benchfmt.Severity]int{}
	for _, f := range findings {
		counts[f.Severity]++
		fmt.Println(f)
	}
	if len(findings) == 0 {
		fmt.Printf("no changes beyond %.0f%% between %s and %s\n", *threshold, flag.Arg(0), flag.Arg(1))
		return
	}
	fmt.Printf("%d finding(s): %d regression, %d improvement, %d drift, %d structure\n",
		len(findings), counts[benchfmt.SevRegression], counts[benchfmt.SevImprovement],
		counts[benchfmt.SevDrift], counts[benchfmt.SevStructure])
	if counts[benchfmt.SevRegression] > 0 {
		os.Exit(1)
	}
}
