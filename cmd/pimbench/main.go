// Command pimbench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index).
//
// Usage:
//
//	pimbench -list
//	pimbench -exp fig2 [-format csv] [-quick]
//	pimbench -exp all -r1 3 -r2 3 -r3 1
//
// Simulator experiments run in virtual time and are deterministic;
// host experiments (-exp fig2-host, fig4-host, queue-host) measure the
// real goroutine implementations on this machine.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"pimds/internal/harness"
	"pimds/internal/model"
)

func main() {
	var (
		expID   = flag.String("exp", "", "experiment id to run, or 'all' (see -list)")
		list    = flag.Bool("list", false, "list available experiments")
		format  = flag.String("format", "table", "output format: table or csv")
		quick   = flag.Bool("quick", false, "smaller sweeps and shorter windows")
		r1      = flag.Float64("r1", model.DefaultR1, "Lcpu/Lpim ratio")
		r2      = flag.Float64("r2", model.DefaultR2, "Lcpu/Lllc ratio")
		r3      = flag.Float64("r3", model.DefaultR3, "Latomic/Lcpu ratio")
		lcpu    = flag.Duration("lcpu", model.DefaultLcpu, "absolute CPU memory latency")
		threads = flag.Int("host-threads", runtime.GOMAXPROCS(0)*4, "max threads for host experiments")
		hostDur = flag.Duration("host-measure", 300*time.Millisecond, "host measurement window per point")
		seed    = flag.Int64("seed", 0, "workload seed for simulator experiments (0 = historical streams)")
	)
	flag.Parse()

	if *list || *expID == "" {
		fmt.Println("available experiments:")
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-16s %s\n", e.ID, e.Description)
		}
		if *expID == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opts := harness.Options{
		Params:      model.Params{Lcpu: *lcpu, R1: *r1, R2: *r2, R3: *r3},
		Quick:       *quick,
		HostThreads: *threads,
		HostMeasure: *hostDur,
		Seed:        *seed,
	}
	if err := opts.Params.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	run := func(e harness.Experiment) {
		fmt.Printf("# %s — %s\n", e.ID, e.Description)
		for _, tab := range e.Run(opts) {
			if err := tab.Write(os.Stdout, *format); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}

	if *expID == "all" {
		for _, e := range harness.Experiments() {
			run(e)
		}
		return
	}
	e, ok := harness.FindExperiment(*expID)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *expID)
		os.Exit(2)
	}
	run(e)
}
