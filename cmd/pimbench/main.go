// Command pimbench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index).
//
// Usage:
//
//	pimbench -list
//	pimbench -exp fig2 [-format csv] [-quick]
//	pimbench -exp fig2,latency -json BENCH.json
//	pimbench -exp all -r1 3 -r2 3 -r3 1
//	pimbench -exp fig4-host -dist zipf:1.3
//
// Simulator experiments run in virtual time and are deterministic;
// host experiments (-exp fig2-host, fig4-host, queue-host) measure the
// real goroutine implementations on this machine. -json writes the
// same tables in the machine-readable benchfmt format consumed by
// benchdiff; keep host experiments out of committed baselines, since
// they measure wall-clock time.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"pimds/internal/benchfmt"
	"pimds/internal/buildinfo"
	"pimds/internal/harness"
	"pimds/internal/model"
)

func main() {
	var (
		expID    = flag.String("exp", "", "experiment id(s) to run, comma-separated, or 'all' (see -list)")
		list     = flag.Bool("list", false, "list available experiments")
		format   = flag.String("format", "table", "output format: table or csv")
		quick    = flag.Bool("quick", false, "smaller sweeps and shorter windows")
		r1       = flag.Float64("r1", model.DefaultR1, "Lcpu/Lpim ratio")
		r2       = flag.Float64("r2", model.DefaultR2, "Lcpu/Lllc ratio")
		r3       = flag.Float64("r3", model.DefaultR3, "Latomic/Lcpu ratio")
		lcpu     = flag.Duration("lcpu", model.DefaultLcpu, "absolute CPU memory latency")
		threads  = flag.Int("host-threads", runtime.GOMAXPROCS(0)*4, "max threads for host experiments")
		hostDur  = flag.Duration("host-measure", 300*time.Millisecond, "host measurement window per point")
		seed     = flag.Int64("seed", 0, "workload seed for simulator experiments (0 = historical streams)")
		dist     = flag.String("dist", "uniform", "key distribution for host set experiments: uniform | zipf[:S] | hot[:H/F]")
		jsonPath = flag.String("json", "", "also write results as machine-readable JSON to this file ('-' = stdout)")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Line("pimbench"))
		return
	}

	if *list || *expID == "" {
		fmt.Println("available experiments:")
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-16s %s\n", e.ID, e.Description)
		}
		if *expID == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opts := harness.Options{
		Params:      model.Params{Lcpu: *lcpu, R1: *r1, R2: *r2, R3: *r3},
		Quick:       *quick,
		HostThreads: *threads,
		HostMeasure: *hostDur,
		Seed:        *seed,
		Dist:        *dist,
	}
	if err := opts.Params.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Validate -dist up front (experiments resolve it per key space).
	if _, err := harness.ParseKeyDist(*dist, 1<<16); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	report := &benchfmt.Report{
		Name: "pimbench",
		Params: benchfmt.Params{
			R1: *r1, R2: *r2, R3: *r3,
			LcpuNS: float64(*lcpu) / float64(time.Nanosecond),
			Seed:   *seed, Quick: *quick,
		},
	}

	run := func(e harness.Experiment) {
		fmt.Printf("# %s — %s\n", e.ID, e.Description)
		tables := e.Run(opts)
		for _, tab := range tables {
			if err := tab.Write(os.Stdout, *format); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		res := benchfmt.ExperimentResult{ID: e.ID, Description: e.Description}
		for _, tab := range tables {
			res.Tables = append(res.Tables, benchfmt.Table{
				Title: tab.Title, Note: tab.Note, Columns: tab.Columns, Rows: tab.Rows,
			})
		}
		report.Experiments = append(report.Experiments, res)
	}

	var exps []harness.Experiment
	if *expID == "all" {
		exps = harness.Experiments()
	} else {
		for _, id := range strings.Split(*expID, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			e, ok := harness.FindExperiment(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
		if len(exps) == 0 {
			fmt.Fprintln(os.Stderr, "no experiments selected; use -list")
			os.Exit(2)
		}
	}
	for _, e := range exps {
		run(e)
	}

	if *jsonPath != "" {
		var w io.Writer = os.Stdout
		if *jsonPath != "-" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := report.Write(w); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
