// Command pimvet is the repo's custom static analyzer: it enforces the
// invariants the Go compiler cannot see — simulator determinism,
// cost-model accounting, atomics hygiene, observability safety, and
// the allocation-free/non-blocking contracts on annotated hot paths —
// using only the standard library's go/parser, go/types and
// go/importer.
//
// Usage:
//
//	pimvet [-strict] [-c analyzer1,analyzer2] [packages]
//
// Packages use go-tool patterns relative to the current directory
// ("./...", "./internal/sim"). With no arguments, ./... is checked.
// Exit status is 1 if any diagnostic is reported.
//
// Function annotations opt hot paths into transitive contracts,
// checked through every module call they make:
//
//	//pimvet:allocfree    // in a doc comment: no heap allocation
//	//pimvet:nonblocking  // in a doc comment: never parks the goroutine
//
// Suppressions are in-source comments:
//
//	//pimvet:allow determinism: host wall-clock timing by design
//	//pimvet:allow-file determinism: whole file is host-side
//
// Under -strict (what CI runs) a suppression without a justification
// after the colon is itself an error.
package main

import (
	"flag"
	"fmt"
	"os"

	"pimds/internal/analysis"
	"pimds/internal/analysis/analyzers"
)

func main() {
	var (
		strict = flag.Bool("strict", false, "fail on suppressions without a justification")
		checks = flag.String("c", "all", "comma-separated analyzers to run (default: all)")
		list   = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	as := analyzers.ByName(*checks)
	if as == nil {
		fmt.Fprintf(os.Stderr, "pimvet: unknown analyzer in %q (try -list)\n", *checks)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimvet:", err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimvet:", err)
		os.Exit(2)
	}
	dirs, err := analysis.ExpandPatterns(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimvet:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(loader, dirs, as, analysis.Options{Strict: *strict})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimvet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "pimvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
