// Package pimds reproduces "Concurrent Data Structures for Near-Memory
// Computing" (Liu, Calciu, Herlihy, Mutlu — SPAA 2017) in Go.
//
// The repository root carries the paper-level benchmarks
// (bench_test.go): one benchmark per table and figure of the paper's
// evaluation, each reporting the simulated or host-measured throughput
// of the corresponding data structures. The implementation lives under
// internal/ (see DESIGN.md for the full inventory):
//
//   - internal/sim      — deterministic discrete-event PIM simulator
//   - internal/model    — the paper's analytical performance model
//   - internal/cds      — CPU-side concurrent baselines (real goroutines)
//   - internal/core     — the PIM-managed list, skip-list and FIFO queue
//   - internal/harness  — workloads, runners, experiment registry
//
// Start with: go run ./examples/quickstart
package pimds
