// Quickstart: build a simulated PIM system, run a partitioned
// PIM-managed skip-list under a uniform workload, and compare its
// throughput with the lock-free skip-list baseline — the headline
// comparison of the paper (Figure 4) in ~60 lines.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"pimds/internal/harness"
	"pimds/internal/model"
)

func main() {
	// The paper's parameters: a PIM core reaches its vault 3× faster
	// than a CPU reaches memory (r1 = 3).
	params := model.DefaultParams()
	fmt.Printf("parameters: Lcpu=%v, r1=%v (Lpim=%v), Lmessage=%v\n\n",
		params.Lcpu, params.R1, params.Lpim(), params.Lmessage())

	const (
		keySpace   = 1 << 14 // 16K keys, skip-list holds ~8K
		partitions = 8       // PIM vaults
		threads    = 16      // client CPUs
	)

	opts := harness.DefaultSimOpts()
	opts.Params = params

	// The PIM-managed skip-list: 8 vaults, each owning 1/8 of the key
	// space, with CPU clients routing requests by a cached sentinel
	// directory (Section 4.2).
	pimRes, beta := harness.SimSkipPIM(opts, partitions, threads, keySpace)
	pimOps := pimRes.Ops

	// The strongest CPU-side baseline: the lock-free skip-list, all 16
	// threads in parallel (Table 2 row 1).
	lockFreeOps := harness.SimSkipLockFree(opts, threads, keySpace, false).Ops

	fmt.Printf("PIM skip-list (k=%d):   %s  (measured β = %.1f nodes/op)\n",
		partitions, model.FormatOps(pimOps), beta)
	fmt.Printf("lock-free skip-list:   %s  (p = %d threads)\n",
		model.FormatOps(lockFreeOps), threads)
	fmt.Printf("speedup:               %.2f×\n\n", pimOps/lockFreeOps)

	// The model's prediction for the same configuration.
	sc := model.SkipConfig{N: keySpace / 2, P: threads, K: partitions, BetaOverride: beta}
	fmt.Printf("model predicts: PIM %s vs lock-free %s (min k to win: %d)\n",
		model.FormatOps(model.SkipPIMPartitioned(params, sc)),
		model.FormatOps(model.SkipLockFree(params, sc)),
		model.MinKForPIMSkipWin(params, sc))
}
