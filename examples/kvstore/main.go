// kvstore: an ordered key-value index on the PIM-managed skip-list
// under a skewed (hot-range) workload, demonstrating the Section 4.2.1
// node-migration protocol. Without rebalancing, one vault serves 90% of
// the traffic; with rebalancing enabled, the hot range is split across
// vaults mid-run and both throughput and the size distribution recover.
//
// Run with:
//
//	go run ./examples/kvstore
package main

import (
	"fmt"

	"pimds/internal/core/pimskip"
	"pimds/internal/harness"
	"pimds/internal/model"
	"pimds/internal/sim"
)

const (
	keySpace = 1 << 12
	vaults   = 4
	clients  = 8
)

func main() {
	fmt.Println("ordered KV index on the PIM skip-list; 90% of requests hit the first quarter of the key space")
	fmt.Println()

	for _, rebalance := range []bool{false, true} {
		ops, sizes, migs := run(rebalance)
		fmt.Printf("rebalancing %-3v  throughput %-12s  migrations %-3d  vault sizes %v\n",
			rebalance, model.FormatOps(ops), migs, sizes)
	}
	fmt.Println()
	fmt.Println("with rebalancing on, the hot partition splits itself (Section 4.2.1's")
	fmt.Println("migration protocol) and the load spreads over more PIM cores")
	fmt.Println()
	demoMerge()
}

// demoMerge shows §4.2.1's second scheme: after a delete-heavy phase
// empties most of the key space, small adjacent partitions merge.
func demoMerge() {
	e := sim.NewEngine(sim.ConfigFromParams(model.DefaultParams()))
	s := pimskip.New(e, keySpace, vaults, 11)
	s.Rebalance = &pimskip.RebalanceConfig{MinLen: 50}
	s.MigBatch = 4
	// Sparse population: every partition below MinLen from the start.
	var keys []int64
	for k := int64(0); k < keySpace; k += 64 {
		keys = append(keys, k)
	}
	s.Preload(keys)

	g := harness.NewGenerator(33, harness.Uniform{N: keySpace},
		harness.Mix{RemovePct: 80, AddPct: 10, ContainsPct: 10})
	cl := s.NewClient(g.SkipStream())
	cl.Start()
	e.RunUntil(5 * sim.Millisecond)

	owners := 0
	var migs uint64
	for _, p := range s.Partitions() {
		owned := false
		for k := int64(0); k < keySpace; k += keySpace / 64 {
			if p.Owns(k) {
				owned = true
				break
			}
		}
		if owned {
			owners++
		}
		migs += p.Migrations
	}
	fmt.Printf("merge scheme: after a delete-heavy phase, %d merge migrations folded the\n", migs)
	fmt.Printf("sparse key space into %d of %d vaults still owning ranges\n", owners, vaults)
}

func run(rebalance bool) (opsPerSec float64, sizes []int, migrations uint64) {
	e := sim.NewEngine(sim.ConfigFromParams(model.DefaultParams()))
	s := pimskip.New(e, keySpace, vaults, 7)
	if rebalance {
		s.Rebalance = &pimskip.RebalanceConfig{MaxLen: 300}
		s.MigBatch = 4
	}

	// Insert-heavy skewed workload: a write-mostly index ingesting
	// keys that cluster in one region (e.g. recent timestamps).
	for i := 0; i < clients; i++ {
		g := harness.NewGenerator(int64(100+i),
			harness.HotRange{N: keySpace, HotPct: 90, FracPct: 25},
			harness.Mix{AddPct: 60, RemovePct: 30, ContainsPct: 10})
		s.NewClient(g.SkipStream()).Start()
	}

	snapshot := func() uint64 {
		var total uint64
		for _, p := range s.Partitions() {
			total += p.Core().Stats.Ops
		}
		return total
	}
	_, ops := sim.Measure(e, func() {}, snapshot, 500*sim.Microsecond, 20*sim.Millisecond)

	for _, p := range s.Partitions() {
		sizes = append(sizes, p.Len())
		migrations += p.Migrations
	}
	return ops, sizes, migrations
}
