// modelexplore: sweep the analytical model's parameters and print the
// crossover points the paper states in Sections 4 and 5 — when does a
// PIM data structure beat the best CPU-side concurrent data structure?
//
// Run with:
//
//	go run ./examples/modelexplore
package main

import (
	"fmt"

	"pimds/internal/model"
)

func main() {
	fmt.Println("== linked-list (Table 1): minimum r1 for the PIM list with combining to win ==")
	for _, n := range []int{100, 1000, 10000} {
		for _, p := range []int{1, 8, 28} {
			c := model.ListConfig{N: n, P: p}
			fmt.Printf("  n=%-6d p=%-3d  r1 > %.3f\n", n, p, model.MinR1ForPIMListWin(c))
		}
	}
	fmt.Println("  (always below 2: the paper's \"r1 ≥ 2 suffices\")")
	fmt.Println()

	fmt.Println("== naive PIM list: last thread count at which it still wins ==")
	for _, r1 := range []float64{1.5, 2, 3, 4} {
		pr := model.DefaultParams()
		pr.R1 = r1
		fmt.Printf("  r1=%-4v  wins up to p = %d\n", r1, model.MaxThreadsNaivePIMListWins(pr))
	}
	fmt.Println()

	fmt.Println("== skip-list (Table 2): minimum partitions k to beat p lock-free threads ==")
	pr := model.DefaultParams()
	for _, p := range []int{8, 16, 28, 56} {
		sc := model.SkipConfig{N: 1 << 16, P: p}
		fmt.Printf("  p=%-3d  k ≥ %-3d (p/r1 = %.1f)\n", p, model.MinKForPIMSkipWin(pr, sc), float64(p)/pr.R1)
	}
	fmt.Println()

	fmt.Println("== FIFO queue (§5.2): PIM speedups across r1 (r2 = r1, r3 = 1) ==")
	for _, r1 := range []float64{1, 2, 3, 4, 6} {
		p := model.Params{Lcpu: model.DefaultLcpu, R1: r1, R2: r1, R3: 1}
		fmt.Printf("  r1=%-3v  PIM/FC = %.2f  PIM/F&A = %.2f  wins: %v\n",
			r1, model.PIMQueueVsFCSpeedup(p), model.PIMQueueVsFAASpeedup(p), model.PIMQueueWins(p))
	}
	fmt.Println()

	fmt.Println("== throughput tables at the paper's parameters ==")
	pr = model.DefaultParams()
	for _, row := range model.Table1(pr, model.ListConfig{N: 1000, P: 28}) {
		fmt.Printf("  %-46s %s\n", row.Algorithm, model.FormatOps(row.OpsPerSec))
	}
	fmt.Println()
	for _, row := range model.Table2(pr, model.SkipConfig{N: 1 << 16, P: 28, K: 16}) {
		fmt.Printf("  %-46s %s\n", row.Algorithm, model.FormatOps(row.OpsPerSec))
	}
	fmt.Println()
	for _, row := range model.QueueTable(pr, model.QueueConfig{P: 28}) {
		fmt.Printf("  %-46s %s\n", row.Algorithm, model.FormatOps(row.OpsPerSec))
	}
}
