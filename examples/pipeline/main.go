// pipeline: a producer/consumer stage pipeline on the PIM-managed FIFO
// queue (Section 5), compared against the flat-combining and F&A queue
// bounds under the same latency model. It also shows the pipelining
// optimization's effect and the segment handoffs that keep the two
// queue ends on different PIM cores.
//
// Run with:
//
//	go run ./examples/pipeline
package main

import (
	"fmt"

	"pimds/internal/core/pimqueue"
	"pimds/internal/harness"
	"pimds/internal/model"
	"pimds/internal/sim"
)

func main() {
	params := model.DefaultParams()
	opts := harness.DefaultSimOpts()

	fmt.Println("producer/consumer pipeline: 8 producers enqueue work items, 8 consumers dequeue")
	fmt.Println()

	// The PIM queue with realistic segment churn: a small threshold
	// forces regular handoffs between the 4 participating cores.
	e := sim.NewEngine(sim.ConfigFromParams(params))
	q := pimqueue.New(e, 4, 4096)
	var producers, consumers []*pimqueue.Client
	var cpus []*sim.CPU
	for i := 0; i < 8; i++ {
		p := q.NewClient(pimqueue.Enqueuer)
		c := q.NewClient(pimqueue.Dequeuer)
		producers = append(producers, p)
		consumers = append(consumers, c)
		cpus = append(cpus, p.CPU(), c.CPU())
	}
	// Producers start first so a backlog builds: the queue grows past
	// the threshold, segments spread across cores, and the two ends
	// end up on different PIM cores (the long-queue regime).
	start := func() {
		for _, cl := range producers {
			cl.Start()
		}
		e.After(200*sim.Microsecond, func() {
			for _, cl := range consumers {
				cl.Start()
			}
		})
	}
	_, pimOps := sim.Measure(e, start, sim.OpsOfCPUs(cpus), opts.Warmup, opts.Measure)

	var handoffs, segs uint64
	for _, qc := range q.Cores() {
		handoffs += qc.Handoffs
		segs += qc.SegsMade
	}
	fmt.Printf("PIM queue (4 cores, threshold 4096): %s  [%d handoffs, %d segments created]\n",
		model.FormatOps(pimOps), handoffs, segs)

	// The Section 5.2 baselines under the same model.
	fcOps := harness.SimQueueFC(opts, 16, false).Ops   // both combiner sides
	faaOps := harness.SimQueueFAA(opts, 16, false).Ops // both ticket counters
	fmt.Printf("flat-combining queue bound:         %s\n", model.FormatOps(fcOps))
	fmt.Printf("F&A queue bound:                    %s\n", model.FormatOps(faaOps))
	fmt.Println()

	// Pipelining ablation on a pure dequeue-side measurement.
	on := harness.SimPIMQueue(opts, harness.QueueRegime{
		Cores: 2, Threshold: 1 << 30, Pipelining: true, Dequeuers: 12, PrefillLong: true}).Ops
	off := harness.SimPIMQueue(opts, harness.QueueRegime{
		Cores: 2, Threshold: 1 << 30, Pipelining: false, Dequeuers: 12, PrefillLong: true}).Ops
	fmt.Printf("pipelining on:  %s (≈ 1/Lpim)\n", model.FormatOps(on))
	fmt.Printf("pipelining off: %s (≈ 1/(Lpim+Lmessage))\n", model.FormatOps(off))
	fmt.Printf("pipelining wins %.1f× — hiding the reply transfer behind the next request (Fig. 6)\n", on/off)
}
