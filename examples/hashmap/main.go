// hashmap: the extension structure — a PIM-managed hash map (the
// "other types of PIM-managed data structures" the paper's conclusion
// invites). Hash routing makes the load uniform with no directory or
// migration machinery, and because each operation is O(1) probes, the
// structure is message-latency-bound: the regime where the §5.2
// pipelining insight matters most.
//
// Run with:
//
//	go run ./examples/hashmap
package main

import (
	"fmt"
	"math/rand"

	"pimds/internal/core/pimhash"
	"pimds/internal/model"
	"pimds/internal/sim"
)

const (
	keys    = 1 << 14
	clients = 24
)

func main() {
	fmt.Printf("PIM hash map, %d clients, 90%% reads, %d keys\n\n", clients, keys)
	fmt.Println("vaults   PIM map      sharded CPU map   speedup")
	for _, k := range []int{1, 2, 4, 8, 16} {
		pim := runPIM(k)
		cpu := runCPU(k)
		fmt.Printf("%6d   %-12s %-17s %.2f×\n", k,
			model.FormatOps(pim), model.FormatOps(cpu), pim/cpu)
	}
	fmt.Println("\nthroughput scales with vaults until the clients' message round trips saturate")
}

func workload(seed int64) func(uint64) pimhash.Op {
	rng := rand.New(rand.NewSource(seed))
	return func(uint64) pimhash.Op {
		k := rng.Int63n(keys)
		if rng.Intn(10) == 0 {
			return pimhash.Op{Kind: pimhash.MsgPut, Key: k, Val: k}
		}
		return pimhash.Op{Kind: pimhash.MsgGet, Key: k}
	}
}

func preload() map[int64]int64 {
	kv := make(map[int64]int64, keys)
	for k := int64(0); k < keys; k++ {
		kv[k] = k
	}
	return kv
}

func runPIM(k int) float64 {
	e := sim.NewEngine(sim.ConfigFromParams(model.DefaultParams()))
	m := pimhash.New(e, k)
	m.Preload(preload())
	var cls []*sim.Client
	for i := 0; i < clients; i++ {
		cls = append(cls, m.NewClient(workload(int64(i))))
	}
	meter := &sim.Meter{Engine: e, Clients: cls}
	_, ops := meter.Run(200*sim.Microsecond, 2*sim.Millisecond)
	return ops
}

func runCPU(shards int) float64 {
	e := sim.NewEngine(sim.ConfigFromParams(model.DefaultParams()))
	gens := make([]func(uint64) pimhash.Op, clients)
	for i := range gens {
		gens[i] = workload(int64(100 + i))
	}
	base := pimhash.NewSimShardedCPU(e, clients, shards, func(cpu int, seq uint64) pimhash.Op {
		return gens[cpu](seq)
	})
	base.Preload(preload())
	_, ops := sim.Measure(e, func() {}, base.Ops(), 200*sim.Microsecond, 2*sim.Millisecond)
	return ops
}
