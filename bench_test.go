// Paper-level benchmarks: one per table and figure of the evaluation
// (see DESIGN.md §3 and EXPERIMENTS.md). Simulator benchmarks report
// the virtual-time throughput as the custom metric "simops/s" — wall
// time per iteration is just how long the simulation takes to compute
// and is not the result. Host benchmarks measure the real goroutine
// implementations and report ns/op directly.
//
// Run everything:   go test -bench=. -benchmem
// One experiment:   go test -bench=BenchmarkFig2Sim -benchtime=1x
package pimds

import (
	"fmt"
	"math/rand"
	"testing"

	"pimds/internal/cds/couplinglist"
	"pimds/internal/cds/faaqueue"
	"pimds/internal/cds/fclist"
	"pimds/internal/cds/fcqueue"
	"pimds/internal/cds/fcskip"
	"pimds/internal/cds/fcstack"
	"pimds/internal/cds/lazylist"
	"pimds/internal/cds/lockfreeskip"
	"pimds/internal/cds/msqueue"
	"pimds/internal/cds/treiberstack"
	"pimds/internal/core/pimhash"
	"pimds/internal/core/pimskip"
	"pimds/internal/core/pimstack"
	"pimds/internal/harness"
	"pimds/internal/model"
	"pimds/internal/sim"
)

func simOpts() harness.SimOpts {
	o := harness.DefaultSimOpts()
	o.Warmup /= 5
	o.Measure /= 5
	return o
}

// --- Table 1 / Figure 2: linked-lists --------------------------------

// BenchmarkTable1Model evaluates the closed-form Table 1 (micro-cost of
// the model itself; the throughput numbers go to cmd/pimmodel).
func BenchmarkTable1Model(b *testing.B) {
	pr := model.DefaultParams()
	c := model.ListConfig{N: 1000, P: 28}
	for i := 0; i < b.N; i++ {
		_ = model.Table1(pr, c)
	}
}

// BenchmarkFig2Sim regenerates the Figure 2 series in virtual time: all
// five Table 1 variants at p = 8.
func BenchmarkFig2Sim(b *testing.B) {
	variants := []struct {
		name string
		alg  model.ListAlgorithm
	}{
		{"FineGrainedLocks", model.FineGrainedLockList},
		{"FCNoCombining", model.FCListNoCombining},
		{"FCCombining", model.FCListCombining},
		{"PIMNaive", model.PIMListNoCombining},
		{"PIMCombining", model.PIMListCombining},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var ops float64
			for i := 0; i < b.N; i++ {
				ops = harness.SimList(simOpts(), v.alg, 8, 400).Ops
			}
			b.ReportMetric(ops, "simops/s")
		})
	}
}

// BenchmarkFig2Host measures the real goroutine linked-lists (the
// paper's host emulation): ns/op across GOMAXPROCS workers.
func BenchmarkFig2Host(b *testing.B) {
	const keySpace = 400
	b.Run("LazyList", func(b *testing.B) {
		l := lazylist.New()
		for _, k := range harness.PreloadKeys(keySpace) {
			l.Add(k)
		}
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(1))
			for pb.Next() {
				k := rng.Int63n(keySpace)
				if rng.Intn(2) == 0 {
					l.Add(k)
				} else {
					l.Remove(k)
				}
			}
		})
	})
	b.Run("CouplingList", func(b *testing.B) {
		// Hand-over-hand locking: the strawman "fine-grained locks";
		// compare with LazyList to see why the paper uses the latter.
		l := couplinglist.New()
		for _, k := range harness.PreloadKeys(keySpace) {
			l.Add(k)
		}
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(8))
			for pb.Next() {
				k := rng.Int63n(keySpace)
				if rng.Intn(2) == 0 {
					l.Add(k)
				} else {
					l.Remove(k)
				}
			}
		})
	})
	for _, combining := range []bool{false, true} {
		name := "FCList"
		if combining {
			name = "FCListCombining"
		}
		b.Run(name, func(b *testing.B) {
			l := fclist.New(combining)
			h := l.NewHandle()
			for _, k := range harness.PreloadKeys(keySpace) {
				h.Add(k)
			}
			b.RunParallel(func(pb *testing.PB) {
				handle := l.NewHandle()
				rng := rand.New(rand.NewSource(2))
				for pb.Next() {
					k := rng.Int63n(keySpace)
					if rng.Intn(2) == 0 {
						handle.Add(k)
					} else {
						handle.Remove(k)
					}
				}
			})
		})
	}
}

// --- Table 2 / Figure 4: skip-lists ----------------------------------

// BenchmarkTable2Model evaluates the closed-form Table 2.
func BenchmarkTable2Model(b *testing.B) {
	pr := model.DefaultParams()
	c := model.SkipConfig{N: 1 << 16, P: 28, K: 16}
	for i := 0; i < b.N; i++ {
		_ = model.Table2(pr, c)
	}
}

// BenchmarkFig4Sim regenerates the Figure 4 series in virtual time at
// p = 16: the lock-free baseline, partitioned FC, and the PIM skip-list
// at k ∈ {8, 16}.
func BenchmarkFig4Sim(b *testing.B) {
	const keySpace = 1 << 14
	const p = 16
	b.Run("LockFree", func(b *testing.B) {
		var ops float64
		for i := 0; i < b.N; i++ {
			ops = harness.SimSkipLockFree(simOpts(), p, keySpace, false).Ops
		}
		b.ReportMetric(ops, "simops/s")
	})
	for _, k := range []int{1, 4, 8, 16} {
		b.Run(benchName("FCPartitions", k), func(b *testing.B) {
			var ops float64
			for i := 0; i < b.N; i++ {
				ops = harness.SimSkipFC(simOpts(), k, p, keySpace).Ops
			}
			b.ReportMetric(ops, "simops/s")
		})
	}
	for _, k := range []int{8, 16} {
		b.Run(benchName("PIMPartitions", k), func(b *testing.B) {
			var ops float64
			for i := 0; i < b.N; i++ {
				res, _ := harness.SimSkipPIM(simOpts(), k, p, keySpace)
				ops = res.Ops
			}
			b.ReportMetric(ops, "simops/s")
		})
	}
}

// BenchmarkFig4Host measures the real goroutine skip-lists.
func BenchmarkFig4Host(b *testing.B) {
	const keySpace = 1 << 14
	b.Run("LockFree", func(b *testing.B) {
		l := lockfreeskip.New(3)
		for _, k := range harness.PreloadKeys(keySpace) {
			l.Add(k)
		}
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(4))
			for pb.Next() {
				k := rng.Int63n(keySpace)
				if rng.Intn(2) == 0 {
					l.Add(k)
				} else {
					l.Remove(k)
				}
			}
		})
	})
	for _, k := range []int{1, 4, 8, 16} {
		b.Run(benchName("FCPartitions", k), func(b *testing.B) {
			l := fcskip.New(keySpace, k, 5)
			h := l.NewHandle()
			for _, key := range harness.PreloadKeys(keySpace) {
				h.Add(key)
			}
			b.RunParallel(func(pb *testing.PB) {
				handle := l.NewHandle()
				rng := rand.New(rand.NewSource(6))
				for pb.Next() {
					key := rng.Int63n(keySpace)
					if rng.Intn(2) == 0 {
						handle.Add(key)
					} else {
						handle.Remove(key)
					}
				}
			})
		})
	}
}

// --- §5.2: FIFO queues -----------------------------------------------

// BenchmarkQueueModel evaluates the closed-form queue bounds.
func BenchmarkQueueModel(b *testing.B) {
	pr := model.DefaultParams()
	for i := 0; i < b.N; i++ {
		_ = model.QueueTable(pr, model.QueueConfig{P: 28})
	}
}

// BenchmarkQueueSim regenerates the §5.2 comparison in virtual time:
// the pipelined PIM queue against both baselines, plus the pipelining
// and short-queue ablations.
func BenchmarkQueueSim(b *testing.B) {
	regimes := []struct {
		name string
		run  func(harness.SimOpts) float64
	}{
		{"PIMPipelined", func(o harness.SimOpts) float64 {
			return harness.SimPIMQueue(o, harness.QueueRegime{Cores: 2, Threshold: 1 << 30,
				Pipelining: true, Dequeuers: 12, PrefillLong: true}).Ops
		}},
		{"PIMNoPipelining", func(o harness.SimOpts) float64 {
			return harness.SimPIMQueue(o, harness.QueueRegime{Cores: 2, Threshold: 1 << 30,
				Pipelining: false, Dequeuers: 12, PrefillLong: true}).Ops
		}},
		{"PIMShortQueue", func(o harness.SimOpts) float64 {
			return harness.SimPIMQueue(o, harness.QueueRegime{Cores: 1, Threshold: 1 << 30,
				Pipelining: true, Enqueuers: 6, Dequeuers: 6, PrefillLong: true}).Ops
		}},
		{"FCBound", func(o harness.SimOpts) float64 {
			return harness.SimQueueFC(o, 24, false).Ops / 2
		}},
		{"FAABound", func(o harness.SimOpts) float64 {
			return harness.SimQueueFAA(o, 1, false).Ops
		}},
	}
	for _, r := range regimes {
		b.Run(r.name, func(b *testing.B) {
			var ops float64
			for i := 0; i < b.N; i++ {
				ops = r.run(simOpts())
			}
			b.ReportMetric(ops, "simops/s")
		})
	}
}

// BenchmarkQueueHost measures the real goroutine queues.
func BenchmarkQueueHost(b *testing.B) {
	b.Run("FCQueue", func(b *testing.B) {
		q := fcqueue.New()
		h := q.NewHandle()
		for i := int64(0); i < 1<<16; i++ {
			h.Enqueue(i)
		}
		var tid int64
		b.RunParallel(func(pb *testing.PB) {
			handle := q.NewHandle()
			enq := (tid)%2 == 0
			tid++
			for pb.Next() {
				if enq {
					handle.Enqueue(1)
				} else {
					handle.Dequeue()
				}
			}
		})
	})
	b.Run("FAAQueue", func(b *testing.B) {
		q := faaqueue.New()
		for i := int64(0); i < 1<<16; i++ {
			q.Enqueue(i)
		}
		var tid int64
		b.RunParallel(func(pb *testing.PB) {
			enq := (tid)%2 == 0
			tid++
			for pb.Next() {
				if enq {
					q.Enqueue(1)
				} else {
					q.Dequeue()
				}
			}
		})
	})
	b.Run("MSQueue", func(b *testing.B) {
		q := msqueue.New()
		for i := int64(0); i < 1<<16; i++ {
			q.Enqueue(i)
		}
		var tid int64
		b.RunParallel(func(pb *testing.PB) {
			enq := (tid)%2 == 0
			tid++
			for pb.Next() {
				if enq {
					q.Enqueue(1)
				} else {
					q.Dequeue()
				}
			}
		})
	})
}

// --- §4.2.1: rebalancing ---------------------------------------------

// BenchmarkRebalanceSim measures the skewed hot-range workload with
// and without the §4.2.1 migration protocol: the "Rebalancing" variant
// should report substantially higher simops/s than "Static".
func BenchmarkRebalanceSim(b *testing.B) {
	const keySpace = 1 << 12
	run := func(rebalance bool) float64 {
		e := sim.NewEngine(sim.ConfigFromParams(model.DefaultParams()))
		s := pimskip.New(e, keySpace, 4, 31)
		if rebalance {
			s.Rebalance = &pimskip.RebalanceConfig{MaxLen: 400}
			s.MigBatch = 4
		}
		for i := 0; i < 8; i++ {
			g := harness.NewGenerator(int64(700+i),
				harness.HotRange{N: keySpace, HotPct: 90, FracPct: 25},
				harness.Mix{AddPct: 60, RemovePct: 30, ContainsPct: 10})
			s.NewClient(g.SkipStream()).Start()
		}
		snapshot := func() uint64 {
			var total uint64
			for _, part := range s.Partitions() {
				total += part.Core().Stats.Ops
			}
			return total
		}
		_, ops := sim.Measure(e, func() {}, snapshot, 200*sim.Microsecond, 4*sim.Millisecond)
		return ops
	}
	for _, rebalance := range []bool{false, true} {
		name := "Static"
		if rebalance {
			name = "Rebalancing"
		}
		rebalance := rebalance
		b.Run(name, func(b *testing.B) {
			var ops float64
			for i := 0; i < b.N; i++ {
				ops = run(rebalance)
			}
			b.ReportMetric(ops, "simops/s")
		})
	}
}

// --- Extension: PIM stack ---------------------------------------------

// BenchmarkStackSim measures the PIM stack (simops/s) with and without
// pipelining.
func BenchmarkStackSim(b *testing.B) {
	run := func(pipelining bool) float64 {
		e := sim.NewEngine(sim.ConfigFromParams(model.DefaultParams()))
		s := pimstack.New(e, 2, 1<<30)
		s.Pipelining = pipelining
		var cls []*pimstack.Client
		var cpus []*sim.CPU
		for i := 0; i < 6; i++ {
			p := s.NewClient(pimstack.Pusher)
			q := s.NewClient(pimstack.Popper)
			cls = append(cls, p, q)
			cpus = append(cpus, p.CPU(), q.CPU())
		}
		start := func() {
			for _, cl := range cls {
				cl.Start()
			}
		}
		_, ops := sim.Measure(e, start, sim.OpsOfCPUs(cpus), 50*sim.Microsecond, 500*sim.Microsecond)
		return ops
	}
	for _, pipelining := range []bool{true, false} {
		name := "Pipelined"
		if !pipelining {
			name = "NoPipelining"
		}
		pipelining := pipelining
		b.Run(name, func(b *testing.B) {
			var ops float64
			for i := 0; i < b.N; i++ {
				ops = run(pipelining)
			}
			b.ReportMetric(ops, "simops/s")
		})
	}
}

// BenchmarkStackHost measures the real goroutine stacks.
func BenchmarkStackHost(b *testing.B) {
	b.Run("Treiber", func(b *testing.B) {
		s := treiberstack.New()
		for i := int64(0); i < 1<<15; i++ {
			s.Push(i)
		}
		var tid int64
		b.RunParallel(func(pb *testing.PB) {
			push := tid%2 == 0
			tid++
			for pb.Next() {
				if push {
					s.Push(1)
				} else {
					s.Pop()
				}
			}
		})
	})
	for _, eliminate := range []bool{false, true} {
		name := "FCStack"
		if eliminate {
			name = "FCStackElimination"
		}
		eliminate := eliminate
		b.Run(name, func(b *testing.B) {
			s := fcstack.New(eliminate)
			h := s.NewHandle()
			for i := int64(0); i < 1<<15; i++ {
				h.Push(i)
			}
			var tid int64
			b.RunParallel(func(pb *testing.PB) {
				handle := s.NewHandle()
				push := tid%2 == 0
				tid++
				for pb.Next() {
					if push {
						handle.Push(1)
					} else {
						handle.Pop()
					}
				}
			})
		})
	}
}

// --- Extension: PIM hash map -----------------------------------------

// BenchmarkHashSim measures the extension PIM hash map across vault
// counts (simops/s).
func BenchmarkHashSim(b *testing.B) {
	for _, k := range []int{1, 4, 8} {
		b.Run(benchName("PIMVaults", k), func(b *testing.B) {
			var ops float64
			for i := 0; i < b.N; i++ {
				e := sim.NewEngine(sim.ConfigFromParams(model.DefaultParams()))
				m := pimhash.New(e, k)
				kv := map[int64]int64{}
				for kk := int64(0); kk < 4096; kk++ {
					kv[kk] = kk
				}
				m.Preload(kv)
				var clients []*sim.Client
				for c := 0; c < 16; c++ {
					rng := rand.New(rand.NewSource(int64(c)))
					clients = append(clients, m.NewClient(func(uint64) pimhash.Op {
						return pimhash.Op{Kind: pimhash.MsgGet, Key: rng.Int63n(4096)}
					}))
				}
				meter := &sim.Meter{Engine: e, Clients: clients}
				_, ops = meter.Run(100*sim.Microsecond, 1*sim.Millisecond)
			}
			b.ReportMetric(ops, "simops/s")
		})
	}
}

func benchName(prefix string, k int) string {
	return fmt.Sprintf("%s=%d", prefix, k)
}
