module pimds

go 1.22
